package ooo

import "fvp/internal/isa"

// ------------------------------------------------------------------ issue

// portBudget is the per-cycle issue bandwidth per class.
type portBudget struct {
	alu, load, store, fp, br int
}

func (c *Core) budget() portBudget {
	return portBudget{
		alu:   c.cfg.ALUPorts,
		load:  c.cfg.LoadPorts,
		store: c.cfg.StorePorts,
		fp:    c.cfg.FPPorts,
		br:    c.cfg.BranchPorts,
	}
}

func (b *portBudget) take(class int) bool {
	var p *int
	switch class {
	case classLoad:
		p = &b.load
	case classStore:
		p = &b.store
	case classFP, classFPDiv:
		p = &b.fp
	case classBranch:
		p = &b.br
	case classNop:
		return true
	default:
		p = &b.alu
	}
	if *p <= 0 {
		return false
	}
	*p--
	return true
}

// stageIssue used to scan the whole window; it now walks only the ready
// queue. Entries whose sources turn out unavailable park on their producers'
// dependence lists (parkIssue) and re-enter the queue when a producer
// completes. Entries that are source-ready but blocked on a port or the
// store-sets gate stay armed and are re-examined every cycle: the full scan
// re-evaluated ready() for them each cycle, and ready() records the
// last-arriving producer (criticality state the oracle walk reads), so their
// per-cycle re-check is part of the modeled machine, not an optimization
// choice. Candidates are processed oldest-first with the shared port budget,
// exactly like the program-order scan.
func (c *Core) stageIssue() {
	if len(c.readyQ) == 0 {
		return
	}
	b := c.budget()
	cand := c.issueCand[:0]
	for _, ref := range c.readyQ {
		e := &c.rob[ref.idx]
		if e.d.Seq == ref.seq && e.state == sWaiting && e.inReadyQ {
			cand = append(cand, ref)
		}
	}
	c.readyQ = c.readyQ[:0]
	sortWindowOrder(cand)
	for _, ref := range cand {
		ri := ref.idx
		e := &c.rob[ri]
		if e.d.Seq != ref.seq || e.state != sWaiting {
			continue // squashed by a flush earlier in this pass
		}
		class := classOf(e.d.Op)
		switch class {
		case classStore:
			// Store-address issue needs only the address source.
			if _, ok := c.srcReady(e, 0, c.now); !ok {
				c.parkIssue(ri, e, true)
				continue
			}
			if !b.take(class) {
				c.readyQ = append(c.readyQ, ref) // stay armed
				continue
			}
			e.inReadyQ = false
			c.issueStore(ri, e)
		case classLoad:
			if !c.ready(e, c.now) {
				c.parkIssue(ri, e, false)
				continue
			}
			if !c.loadMayIssue(e) {
				c.readyQ = append(c.readyQ, ref) // stay armed
				continue
			}
			if !b.take(class) {
				c.readyQ = append(c.readyQ, ref) // stay armed
				continue
			}
			e.inReadyQ = false
			c.issueLoad(ri, e)
		default:
			if !c.ready(e, c.now) {
				c.parkIssue(ri, e, false)
				continue
			}
			if !b.take(class) {
				c.readyQ = append(c.readyQ, ref) // stay armed
				continue
			}
			e.inReadyQ = false
			e.issueAt = c.now
			e.state = sIssued
			e.doneAt = c.now + c.cfg.latencyFor(class)
			e.inIQ = false
			c.iqCount--
			if c.trc != nil {
				c.trc.PipeEvent(EvIssue, c.now, &e.d, 0)
			}
			c.scheduleDone(ri, e)
		}
	}
	c.issueCand = cand[:0]
}

// loadMayIssue applies the store-sets gate: a load predicted dependent on a
// specific store waits until that store has produced its data.
func (c *Core) loadMayIssue(e *rent) bool {
	if e.ssWaitIdx < 0 {
		return true
	}
	st := &c.rob[e.ssWaitIdx]
	if st.d.Seq != e.ssWaitSeq {
		e.ssWaitIdx = -1 // the store left the window
		return true
	}
	if st.state == sDone || (st.state == sIssued && st.doneAt != 0 && st.doneAt <= c.now) {
		e.ssWaitIdx = -1
		return true
	}
	return false
}

func (c *Core) issueStore(ri int, e *rent) {
	c.activity = true
	e.issueAt = c.now
	e.state = sIssued
	e.addrKnownAt = c.now + 1
	e.doneAt = 0 // pending data; stageWriteback resolves
	e.inIQ = false
	c.iqCount--
	if c.trc != nil {
		c.trc.PipeEvent(EvIssue, c.now, &e.d, 0)
	}
	// If data is already available the store completes next cycle.
	if avail, ok := c.srcReady(e, 1, c.now); ok {
		dr := e.addrKnownAt
		if avail > dr {
			dr = avail
		}
		e.doneAt = dr
	}
	if e.doneAt != 0 {
		c.scheduleDone(ri, e)
	} else {
		c.pendStores = append(c.pendStores, schedRef{idx: ri, seq: e.d.Seq})
	}
	c.scanViolations(ri, e)
}

// scanViolations runs when a store's address resolves: any younger load
// that already obtained data without seeing this store is a memory-order
// violation (machine clear + store-sets training). Younger deferred loads
// re-link to this store if it is a better (younger) match.
func (c *Core) scanViolations(ri int, st *rent) {
	var flush flushReq
	// Walk only the in-window loads younger than the store, oldest first —
	// the same visit order the full window scan produced.
	for j := c.ldWin.searchSeq(st.d.Seq + 1); j < c.ldWin.len(); j++ {
		li := c.ldWin.at(j).idx
		le := &c.rob[li]
		if le.d.Addr != st.d.Addr {
			continue
		}
		switch le.state {
		case sIssued, sDone:
			if le.fwdFromSeq < st.d.Seq {
				c.ss.Violation(le.d.PC, st.d.PC)
				c.Stats.MemOrderFlushes++
				flush.request(c.distFromHead(li), true, c.cfg.MemFlushPenalty)
			}
		case sWaitStore:
			if le.waitStoreSeq < st.d.Seq {
				le.waitStore = ri
				le.waitStoreSeq = st.d.Seq
			}
		}
	}
	if flush.active {
		c.applyFlush(flush)
	}
}

func (c *Core) issueLoad(ri int, e *rent) {
	c.activity = true
	e.issueAt = c.now
	e.inIQ = false
	c.iqCount--
	if c.trc != nil {
		c.trc.PipeEvent(EvIssue, c.now, &e.d, 0)
	}

	// Search older stores youngest-first for a same-address match with a
	// resolved address; speculate past unresolved addresses (aggressive
	// disambiguation — the store-sets gate already ran). The store ring
	// holds exactly the in-window stores in program order, so the walk
	// touches only stores instead of every older window entry.
	for j := c.stWin.searchSeq(e.d.Seq) - 1; j >= 0; j-- {
		si := c.stWin.at(j).idx
		st := &c.rob[si]
		if st.state == sWaiting || st.addrKnownAt == 0 || st.addrKnownAt > c.now {
			if c.cfg.ConservativeMemDisambiguation {
				// Conservative policy: an unresolved older store
				// blocks the load entirely.
				e.state = sWaitStore
				e.waitStore = si
				e.waitStoreSeq = st.d.Seq
				c.waiters = append(c.waiters, schedRef{idx: ri, seq: e.d.Seq})
				return
			}
			continue // address unknown: speculate past
		}
		if st.d.Addr != e.d.Addr {
			continue
		}
		// Conflicting older store found.
		if st.state == sDone || (st.doneAt != 0 && st.doneAt <= c.now) {
			e.state = sIssued
			e.doneAt = c.now + c.cfg.ForwardLat
			e.fwdFromSeq = st.d.Seq
			c.Stats.Forwards++
			c.pred.OnForward(e.d.PC, st.d.PC)
			c.scheduleDone(ri, e)
		} else {
			e.state = sWaitStore
			e.waitStore = si
			e.waitStoreSeq = st.d.Seq
			c.waiters = append(c.waiters, schedRef{idx: ri, seq: e.d.Seq})
		}
		return
	}
	done, lvl := c.hier.Load(c.now, e.d.Addr, e.d.PC)
	e.state = sIssued
	e.doneAt = done
	e.lvl = lvl
	e.issuedToMem = true
	c.scheduleDone(ri, e)
}

// ----------------------------------------------------------------- rename

func (c *Core) stageRename() {
	// Per-cycle value-prediction bandwidth: the paper's Value Table
	// predicts up to LoadPorts loads per cycle (§IV-C).
	vpBudget := c.cfg.LoadPorts
	for n := 0; n < c.cfg.RenameWidth; n++ {
		if c.fqHead >= len(c.fetchQ) || c.fetchQ[c.fqHead].readyAt > c.now {
			return
		}
		if c.count >= c.cfg.ROBSize || c.iqCount >= c.cfg.IQSize {
			return
		}
		fe := &c.fetchQ[c.fqHead]
		if fe.d.Op.IsLoad() && c.lqCount >= c.cfg.LQSize {
			return
		}
		if fe.d.Op.IsStore() && c.sqCount >= c.cfg.SQSize {
			return
		}
		c.rename(fe, &vpBudget)
		c.fqHead++
		if c.fqHead == len(c.fetchQ) {
			c.fetchQ = c.fetchQ[:0]
			c.fqHead = 0
		}
	}
}

func (c *Core) rename(fe *fetchEnt, vpBudget *int) {
	c.activity = true
	slot := (c.head + c.count) % len(c.rob)
	// Drop dependence subscriptions left by the slot's previous occupant
	// (only squashed entries leave any; completion already drains the list).
	c.deps[slot] = c.deps[slot][:0]
	e := &c.rob[slot]
	*e = rent{
		d:         fe.d,
		state:     sWaiting,
		inIQ:      true,
		linkStore: -1,
		waitStore: -1,
		ssWaitIdx: -1,
		critProd:  -1,
		histSnap:  fe.histSnap,
	}
	d := &e.d

	// Source lookup through the RAT; parent PCs through RAT-PC.
	srcRegs := [2]isa.Reg{d.Src1, d.Src2}
	for s, r := range srcRegs {
		if r == isa.RegZero {
			continue
		}
		rp := c.regProd[r]
		if rp.hasProd && c.rob[rp.prodIdx].d.Seq == rp.prodSeq {
			e.src[s] = srcDep{prodIdx: rp.prodIdx, prodSeq: rp.prodSeq, hasProd: true}
		}
		if pc := c.regPC[r]; pc != 0 {
			dup := false
			for k := 0; k < e.nparents; k++ {
				if e.parents[k] == pc {
					dup = true
					break
				}
			}
			if !dup && e.nparents < 2 {
				e.parents[e.nparents] = pc
				e.nparents++
			}
		}
	}

	// Memory-dependence prediction (store sets).
	switch {
	case d.Op.IsLoad():
		if waitSeq, ok := c.ss.DispatchLoad(d.PC); ok {
			if si, found := c.findStoreBySeq(waitSeq); found {
				e.ssWaitIdx = si
				e.ssWaitSeq = waitSeq
			}
		}
		c.lqCount++
		c.ldWin.pushBack(schedRef{idx: slot, seq: d.Seq})
	case d.Op.IsStore():
		c.ss.DispatchStore(d.PC, d.Seq)
		c.sqCount++
		c.stWin.pushBack(schedRef{idx: slot, seq: d.Seq})
	}

	// Value prediction lookup. Every instruction accesses the predictor
	// (stores deposit their identity in MR's Value File); accepting a
	// prediction is limited by the per-cycle budget.
	c.ctx.Hist = fe.histSnap
	c.ctx.Parents = e.parents
	c.ctx.NumParents = e.nparents
	p := c.pred.Lookup(d, &c.ctx)
	if p.Valid && *vpBudget > 0 {
		switch {
		case p.StoreLinked:
			if si, found := c.findStoreBySeq(p.StoreSeq); found {
				st := &c.rob[si]
				e.predicted = true
				e.predValue = st.d.Value
				e.linkStore = si
				e.fwdPredSeq = st.d.Seq
				*vpBudget--
			} else if p.DataReady {
				e.predicted = true
				e.predValue = p.Value
				e.predAvailAt = c.now
				*vpBudget--
			}
		default:
			e.predicted = true
			e.predValue = p.Value
			e.predAvailAt = c.now
			*vpBudget--
		}
	}

	// Mispredicting branch: remember its producers for the §VI-A3 signal.
	if fe.mispred {
		e.brMispredict = true
		c.Stats.BranchMispredicts++
		for k := 0; k < e.nparents; k++ {
			c.brChainInsert(e.parents[k])
		}
	}

	// RAT update.
	if e.d.HasDest() {
		c.regProd[d.Dst] = srcDep{prodIdx: slot, prodSeq: d.Seq, hasProd: true}
		c.regPC[d.Dst] = d.PC
	}
	c.count++
	c.iqCount++
	if c.trc != nil {
		c.trc.PipeEvent(EvRename, c.now, d, 0)
		if e.predicted {
			c.trc.PipeEvent(EvPredict, c.now, d, e.predValue)
		}
	}
	// Newly renamed entries enter the ready queue; the first issue attempt
	// parks them on their producers if the sources are not yet available.
	c.armIssue(slot, e)
}

// findStoreBySeq locates an in-window store by sequence number (false when
// it already retired, never existed, or names a non-store). The store ring
// is seq-ordered, so a binary search replaces the window walk.
func (c *Core) findStoreBySeq(seq uint64) (int, bool) {
	if pos := c.stWin.searchSeq(seq); pos < c.stWin.len() {
		if ref := c.stWin.at(pos); ref.seq == seq {
			return ref.idx, true
		}
	}
	return 0, false
}

// ------------------------------------------------------------------ fetch

func (c *Core) stageFetch() {
	if c.now < c.fetchStallUntil || c.redirectActive {
		return
	}
	for n := 0; n < c.cfg.FetchWidth; n++ {
		if len(c.fetchQ)-c.fqHead >= c.cfg.FetchBufferSize {
			return
		}
		if len(c.fetchQ) == cap(c.fetchQ) && c.fqHead > 0 {
			// Compact the consumed prefix so the buffer's backing
			// array is reused instead of regrown.
			live := copy(c.fetchQ, c.fetchQ[c.fqHead:])
			c.fetchQ = c.fetchQ[:live]
			c.fqHead = 0
		}
		fe, ok := c.nextInst()
		if !ok {
			return
		}
		// Any fetched micro-op is activity — including the I-cache-miss
		// path below, which parks it as the pending holdover.
		c.activity = true
		// Instruction cache: charge a stall when fetch crosses into an
		// uncached line.
		line := fe.d.PC >> 6
		if line != c.lastFetchLine {
			done, _ := c.hier.Fetch(c.now, fe.d.PC)
			c.lastFetchLine = line
			if done > c.now {
				c.fetchStallUntil = done
				c.pending = fe
				return
			}
		}
		if !fe.replayed {
			if fe.d.Op.IsBranch() {
				fe.histSnap = c.bu.Hist.Bits(32)
				out := c.bu.PredictAndTrain(&fe.d)
				fe.mispred = !out.Correct
			} else {
				fe.histSnap = c.bu.Hist.Bits(32)
			}
		}
		fe.readyAt = c.now + c.cfg.FrontEndDepth
		c.fetchQ = append(c.fetchQ, *fe)
		c.Stats.Fetched++
		if c.trc != nil {
			c.trc.PipeEvent(EvFetch, c.now, &c.fetchQ[len(c.fetchQ)-1].d, 0)
		}
		if fe.mispred {
			// Fetch stops behind the mispredicted branch until it
			// resolves.
			c.redirectActive = true
			c.redirectSeq = fe.d.Seq
			return
		}
	}
}

// nextInst obtains the next micro-op in program order: the I-cache-stalled
// holdover, then the flush-replay queue, then the trace source.
func (c *Core) nextInst() (*fetchEnt, bool) {
	if c.pending != nil {
		fe := c.pending
		c.pending = nil
		return fe, true
	}
	if c.rpHead < len(c.replay) {
		c.fetchScratch = c.replay[c.rpHead]
		c.rpHead++
		if c.rpHead == len(c.replay) {
			c.replay = c.replay[:0]
			c.rpHead = 0
		}
		return &c.fetchScratch, true
	}
	if c.srcDone {
		return nil, false
	}
	c.fetchScratch = fetchEnt{}
	if !c.src.Next(&c.fetchScratch.d) {
		c.srcDone = true
		return nil, false
	}
	return &c.fetchScratch, true
}

// ------------------------------------------------------------------ flush

// applyFlush squashes the window from the request point, queues the
// squashed micro-ops (plus everything in the front end) for replay, repairs
// the RAT images and charges the refetch penalty.
func (c *Core) applyFlush(f flushReq) {
	c.activity = true
	start := f.dist
	if !f.inclusive {
		start++
	}
	if start >= c.count {
		// Nothing younger in the window; still clear the front end and
		// charge the penalty.
		start = c.count
	}
	if c.trc != nil {
		var first *isa.DynInst
		if start < c.count {
			first = &c.rob[c.idx(start)].d
		}
		c.trc.PipeEvent(EvFlush, c.now, first, uint64(c.count-start))
	}

	// Truncate the load/store rings to the surviving window. The boundary
	// seq must be captured before the squash loop invalidates slot seqs.
	if start < c.count {
		bseq := c.rob[c.idx(start)].d.Seq
		for c.ldWin.len() > 0 && c.ldWin.at(c.ldWin.len()-1).seq >= bseq {
			c.ldWin.popBack()
		}
		for c.stWin.len() > 0 && c.stWin.at(c.stWin.len()-1).seq >= bseq {
			c.stWin.popBack()
		}
	}

	squashed := c.squashBuf[:0]
	for j := start; j < c.count; j++ {
		e := &c.rob[c.idx(j)]
		squashed = append(squashed, fetchEnt{
			d:        e.d,
			mispred:  e.brMispredict,
			histSnap: e.histSnap,
			replayed: true,
		})
		switch {
		case e.d.Op.IsLoad():
			c.lqCount--
		case e.d.Op.IsStore():
			c.sqCount--
		}
		if e.inIQ {
			c.iqCount--
		}
		// Invalidate the slot so stale prodIdx references miscompare.
		e.d.Seq = ^uint64(0)
		e.state = sDone
	}
	c.count = start

	for i := c.fqHead; i < len(c.fetchQ); i++ {
		fe := c.fetchQ[i]
		fe.replayed = true
		squashed = append(squashed, fe)
	}
	c.fetchQ = c.fetchQ[:0]
	c.fqHead = 0
	if c.pending != nil {
		// The I-cache holdover was never predicted or renamed; it goes
		// back as a fresh fetch.
		squashed = append(squashed, *c.pending)
		c.pending = nil
	}
	// Prepend by swapping buffers: the unread replay tail moves behind the
	// squashed micro-ops, and the old replay array becomes the next
	// flush's scratch space.
	squashed = append(squashed, c.replay[c.rpHead:]...)
	c.squashBuf = c.replay[:0]
	c.replay = squashed
	c.rpHead = 0

	// Rebuild speculative RAT/RAT-PC from the retired images plus the
	// surviving window.
	for r := range c.regProd {
		c.regProd[r] = srcDep{}
		c.regPC[r] = c.retRegPC[r]
	}
	for j := 0; j < c.count; j++ {
		ri := c.idx(j)
		e := &c.rob[ri]
		if e.d.HasDest() {
			c.regProd[e.d.Dst] = srcDep{prodIdx: ri, prodSeq: e.d.Seq, hasProd: true}
			c.regPC[e.d.Dst] = e.d.PC
		}
	}

	// A redirect pending on a squashed branch is re-established when the
	// branch is refetched.
	if c.redirectActive {
		found := false
		for j := 0; j < c.count; j++ {
			if c.rob[c.idx(j)].d.Seq == c.redirectSeq {
				found = true
				break
			}
		}
		if !found {
			c.redirectActive = false
		}
	}

	c.ss.Flush()
	c.pred.OnFlush()
	c.lastFetchLine = ^uint64(0)
	if resume := c.now + f.penalty; resume > c.fetchStallUntil {
		c.fetchStallUntil = resume
	}
}
