package ooo_test

// Cycle-exact golden-stat snapshots. Every (workload, core, predictor) case
// runs the timing model from a cold start for a fixed instruction budget and
// compares the complete RunStats and value-prediction Meter against a
// checked-in snapshot. Any change to the simulated microarchitecture — even
// a one-cycle shift in a single run — fails here, which is what lets the
// scheduler internals be rewritten for speed with proof that the modeled
// machine is untouched.
//
// Regenerate after an intentional model change with:
//
//	go test ./internal/ooo -run TestGoldenStats -update
import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"fvp/internal/core"
	"fvp/internal/ooo"
	"fvp/internal/prog"
	"fvp/internal/vp"
	"fvp/internal/workload"
)

var update = flag.Bool("update", false, "rewrite testdata/golden_stats.json from the current model")

// goldenInsts is the per-run retirement budget. Small enough that the full
// matrix runs in seconds, long enough to exercise flush replay, store
// forwarding, DRAM misses and predictor warm-up in every case.
const goldenInsts = 20_000

const goldenPath = "testdata/golden_stats.json"

// goldenWorkloads is the canonical 13-entry matrix slice, shared with
// `tracegen -suite` and the replay equivalence test so every consumer of
// "the golden matrix" means the same workloads (see workload.GoldenMatrix
// for the selection rationale).
var goldenWorkloads = workload.GoldenMatrix()

// goldenPredictors names the predictor arms: the no-VP baseline, the
// prior-art MR predictor, and the paper's FVP.
var goldenPredictors = []string{"none", "MR", "FVP"}

func goldenPredictor(name string) vp.Predictor {
	switch name {
	case "none":
		return nil
	case "MR":
		return vp.NewMR(vp.MR8KBConfig())
	case "FVP":
		return core.New(core.DefaultConfig())
	}
	panic("unknown golden predictor " + name)
}

func goldenCores() []ooo.Config { return []ooo.Config{ooo.Skylake(), ooo.Skylake2X()} }

// goldenRecord is one snapshot entry. Stats and Meter are raw event counts,
// so a mismatch pinpoints which mechanism diverged; Coverage is derived but
// recorded for readability.
type goldenRecord struct {
	Key      string
	Stats    ooo.RunStats
	Meter    vp.Meter
	Coverage float64
}

func goldenKey(wl, coreName, pred string) string {
	return fmt.Sprintf("%s/%s/%s", wl, coreName, pred)
}

// runGoldenCase simulates one matrix cell from a cold start.
func runGoldenCase(wl workload.Workload, cfg ooo.Config, pred string) goldenRecord {
	p := wl.Build()
	c := ooo.New(cfg, goldenPredictor(pred), prog.NewExec(p), p.BuildMemory())
	c.WarmCaches(p.WarmRanges)
	st := c.Run(goldenInsts)
	// SkippedCycles/SkipEvents describe the simulator (how many cycles the
	// loop clock-jumped), not the simulated machine, and legitimately differ
	// between the default and ooo_noskip builds. Zeroing them here makes the
	// snapshot comparison a pure machine-model check — and makes the matrix
	// itself the bit-exactness proof for idle-cycle elision, since both
	// builds must match the same snapshot.
	st.SkippedCycles = 0
	st.SkipEvents = 0
	return goldenRecord{
		Key:      goldenKey(wl.Name, cfg.Name, pred),
		Stats:    st,
		Meter:    c.Meter,
		Coverage: c.Meter.Coverage(),
	}
}

func loadGolden(t *testing.T) map[string]goldenRecord {
	t.Helper()
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden snapshot: %v (run with -update to generate)", err)
	}
	var recs []goldenRecord
	if err := json.Unmarshal(data, &recs); err != nil {
		t.Fatalf("parse %s: %v", goldenPath, err)
	}
	m := make(map[string]goldenRecord, len(recs))
	for _, r := range recs {
		m[r.Key] = r
	}
	return m
}

func TestGoldenStats(t *testing.T) {
	if testing.Short() {
		t.Skip("golden matrix skipped in -short mode")
	}
	if *update {
		updateGolden(t)
		return
	}
	want := loadGolden(t)
	for _, name := range goldenWorkloads {
		wl, ok := workload.ByName(name)
		if !ok {
			t.Fatalf("unknown golden workload %q", name)
		}
		for _, cfg := range goldenCores() {
			for _, pred := range goldenPredictors {
				wl, cfg, pred := wl, cfg, pred
				key := goldenKey(wl.Name, cfg.Name, pred)
				t.Run(key, func(t *testing.T) {
					t.Parallel()
					exp, ok := want[key]
					if !ok {
						t.Fatalf("no golden record for %s (run with -update)", key)
					}
					got := runGoldenCase(wl, cfg, pred)
					if !reflect.DeepEqual(got.Stats, exp.Stats) {
						t.Errorf("RunStats diverged from golden:\n got: %+v\nwant: %+v", got.Stats, exp.Stats)
					}
					if got.Meter != exp.Meter {
						t.Errorf("vp.Meter diverged from golden:\n got: %+v\nwant: %+v", got.Meter, exp.Meter)
					}
				})
			}
		}
	}
}

func updateGolden(t *testing.T) {
	var recs []goldenRecord
	for _, name := range goldenWorkloads {
		wl, ok := workload.ByName(name)
		if !ok {
			t.Fatalf("unknown golden workload %q", name)
		}
		for _, cfg := range goldenCores() {
			for _, pred := range goldenPredictors {
				recs = append(recs, runGoldenCase(wl, cfg, pred))
			}
		}
	}
	data, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(goldenPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %d records to %s", len(recs), goldenPath)
}

// TestGoldenDeterminism re-runs one snapshot case and demands bit-identical
// stats: the simulator must be a pure function of (workload, config,
// predictor) — no map-iteration order, timing, or shared-state dependence.
func TestGoldenDeterminism(t *testing.T) {
	wl, _ := workload.ByName("omnetpp")
	a := runGoldenCase(wl, ooo.Skylake(), "FVP")
	b := runGoldenCase(wl, ooo.Skylake(), "FVP")
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two identical runs diverged:\n a: %+v\n b: %+v", a, b)
	}
}
