//go:build ooo_noskip

package ooo

// elisionBuild is false under -tags ooo_noskip: every cycle ticks through
// the full stage loop, the reference behavior idle-cycle elision must
// reproduce byte-identically (see elide.go and the CI differential job).
const elisionBuild = false
