package ooo

import (
	"fvp/internal/isa"
	"fvp/internal/memsys"
)

// Struct-of-arrays window storage.
//
// The window used to be a single []rent array-of-structs: one 264-byte
// record per ROB slot holding the micro-op, both source dependences, the
// FVP bookkeeping and the scheduler state side by side. Every per-cycle
// predicate (is this ref stale? is the head done? is this producer's
// result available?) dragged a whole record — four-plus cache lines —
// through L1 to read eight bytes of it, and renaming wrote the full record
// with a duffcopy. At Skylake sizing (224 entries) the ROB alone was 59 KB,
// twice the L1D; the Skylake-2X golden configs double that.
//
// The slabs below split that record by access pattern:
//
//   - seq / state / flags / doneAt: the fields every scheduler predicate
//     reads. One byte or word per slot, densely packed, so a staleness
//     check or a completion test touches exactly one line and neighboring
//     slots share it. flags bit-packs the six booleans the old record
//     spread over six padded bytes; availability checks mask-and-test
//     instead of loading separate bools.
//   - inst: the 48-byte isa.DynInst payload, still dense but only touched
//     by stages that need the architectural fields (op/regs/addr/value).
//   - src: two srcDep records per slot (flat, 2*i addressing) — the rename
//     dependence edges, read by wakeup/ready checks.
//   - pred: the value-prediction availability triple destAvail reads on
//     the issue path (predicted-value arrival time, MR store link).
//   - cold: everything the steady-state cycle loop does not touch per
//     predicate — parent PCs and history snapshot (read once at complete
//     for training), store-wait and store-sets links, criticality records,
//     the predicted value (read once at validation). Splitting these out
//     is also what keeps the Observer/PipeTracer hooks zero-cost: tracers
//     receive *isa.DynInst pointers into the inst slab, so the hot slabs
//     carry no observability state at all.
//
// Cross-slab references are int32 slot indices plus the slot's seq (see
// schedRef in sched.go): an index is 4 bytes against a pointer's 8, never
// keeps a record alive for GC, and survives the harness's core pooling
// (Reset re-zeroes slabs in place; no pointer identity to fix up).
//
// The slab refactor is pure layout: every predicate and visit order is a
// 1:1 translation of the array-of-structs code, and the golden-stat matrix
// (generator-driven and packed-replay, elision on/off, -race) pins the
// simulated machine byte-identical across the change.

// flags bits (one byte per slot in window.flags).
const (
	// fInIQ: the entry occupies an issue-queue slot.
	fInIQ uint8 = 1 << iota
	// fInReadyQ: the entry is in the scheduler's ready queue.
	fInReadyQ
	// fPredicted: a value prediction was accepted at rename.
	fPredicted
	// fValidated: the prediction was checked at completion.
	fValidated
	// fIssuedToMem: a load actually accessed the hierarchy (vs forwarding).
	fIssuedToMem
	// fBrMispredict: the entry is a mispredicted branch.
	fBrMispredict
)

// srcDep is one rename dependence edge: either the producing in-window
// slot (prodIdx/prodSeq) or an immediate availability time.
type srcDep struct {
	prodSeq uint64
	availAt uint64
	prodIdx int32
	hasProd bool
}

// predLink is the value-prediction availability state destAvail reads on
// the wakeup path: when the predicted value arrives, and — for MR
// store-linked predictions — which in-window store delivers it.
type predLink struct {
	availAt uint64 // cycle the predicted value is usable (non-linked)
	linkSeq uint64 // seq of the MR-linked store (guards link staleness)
	link    int32  // slot of the MR-linked store, -1 = none
}

// slotCold holds the per-slot fields no steady-state predicate reads:
// training context captured at rename, memory-dependence wait links,
// criticality records, and the predicted value (read once at validation).
type slotCold struct {
	parents     [2]uint64 // producer PCs for the FVP context
	histSnap    uint64    // branch history at fetch
	issueAt     uint64
	addrKnownAt uint64 // stores: address resolved
	fwdFromSeq  uint64 // loads: seq of forwarding store (0 = none)
	waitSeq     uint64 // seq of the store a deferred load waits on
	ssWaitSeq   uint64 // store-sets: seq of the store to wait for
	predValue   uint64
	critSeq     uint64 // seq of the last-arriving producer
	waitIdx     int32  // slot of the store a deferred load waits on
	ssWaitIdx   int32  // store-sets wait slot, -1 = none
	crit        int32  // last-arriving producer slot, -1 = none
	nparents    uint8
	lvl         memsys.Level
}

// window is the struct-of-arrays ROB. All slabs are preallocated at
// ROBSize and indexed by slot; ROB/LQ/SQ/IQ membership is tracked by the
// head/count cursors and occupancy counters on Core (which double as the
// Observer's occupancy sample — no per-interval window walk).
type window struct {
	inst   []isa.DynInst
	seq    []uint64 // mirror of inst[i].Seq; ^0 marks a squashed slot
	state  []uint8
	flags  []uint8
	doneAt []uint64
	src    []srcDep // 2 per slot: src[2*i], src[2*i+1]
	pred   []predLink
	cold   []slotCold
}

func (w *window) init(n int) {
	w.inst = make([]isa.DynInst, n)
	w.seq = make([]uint64, n)
	w.state = make([]uint8, n)
	w.flags = make([]uint8, n)
	w.doneAt = make([]uint64, n)
	w.src = make([]srcDep, 2*n)
	w.pred = make([]predLink, n)
	w.cold = make([]slotCold, n)
}

// reset zeroes every slab in place (the Reset-equals-New contract).
func (w *window) reset() {
	clear(w.inst)
	clear(w.seq)
	clear(w.state)
	clear(w.flags)
	clear(w.doneAt)
	clear(w.src)
	clear(w.pred)
	clear(w.cold)
}

// reinit claims slot i for a newly renamed micro-op, resetting every slab
// field to its rename default in one pass (the SoA equivalent of the old
// whole-record overwrite, minus the duffcopy).
func (w *window) reinit(i int, d *isa.DynInst, histSnap uint64) {
	w.inst[i] = *d
	w.seq[i] = d.Seq
	w.state[i] = sWaiting
	w.flags[i] = fInIQ
	w.doneAt[i] = 0
	w.src[2*i] = srcDep{}
	w.src[2*i+1] = srcDep{}
	w.pred[i] = predLink{link: -1}
	w.cold[i] = slotCold{histSnap: histSnap, waitIdx: -1, ssWaitIdx: -1, crit: -1}
}
