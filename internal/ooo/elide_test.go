package ooo_test

// Differential tests for idle-cycle elision (elide.go). The golden-stat
// matrix already pins the default build to the pre-elision snapshots; the
// tests here additionally run the clock-jumping and ticking paths in one
// process (via Config.DisableIdleElision) and demand byte-identical stats,
// interval samples, and pipe-trace output — plus proof that the fast path
// actually skips on the memory-bound workloads it was built for.

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"fvp/internal/ooo"
	"fvp/internal/prog"
	"fvp/internal/telemetry"
	"fvp/internal/workload"
)

// elideCore builds a cold-start core for one matrix cell with the elision
// switch set explicitly.
func elideCore(t *testing.T, wlName string, cfg ooo.Config, pred string, disable bool) *ooo.Core {
	t.Helper()
	wl, ok := workload.ByName(wlName)
	if !ok {
		t.Fatalf("unknown workload %q", wlName)
	}
	p := wl.Build()
	cfg.DisableIdleElision = disable
	c := ooo.New(cfg, goldenPredictor(pred), prog.NewExec(p), p.BuildMemory())
	c.WarmCaches(p.WarmRanges)
	return c
}

// normalizeSkips zeroes the simulator meta-counters so ticking and jumping
// runs can be compared field-for-field on the machine model alone.
func normalizeSkips(st ooo.RunStats) ooo.RunStats {
	st.SkippedCycles = 0
	st.SkipEvents = 0
	return st
}

// TestElisionTickEquivalence runs representative cells of the golden matrix
// twice — clock-jumping and ticking — and requires identical RunStats and
// vp.Meter. Under -tags ooo_noskip both runs tick and the test degenerates
// to a determinism check, which is what the CI differential job wants: the
// golden snapshots then carry the cross-build comparison.
func TestElisionTickEquivalence(t *testing.T) {
	cases := []struct {
		wl   string
		cfg  ooo.Config
		pred string
	}{
		{"mcf", ooo.Skylake(), "none"},
		{"mcf", ooo.Skylake(), "FVP"},
		{"mcf-17", ooo.Skylake2X(), "FVP"},
		{"omnetpp", ooo.Skylake(), "FVP"},
		{"gcc", ooo.Skylake(), "MR"},
		{"libquantum", ooo.Skylake2X(), "none"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.wl+"/"+tc.cfg.Name+"/"+tc.pred, func(t *testing.T) {
			t.Parallel()
			fast := elideCore(t, tc.wl, tc.cfg, tc.pred, false)
			slow := elideCore(t, tc.wl, tc.cfg, tc.pred, true)
			fs := fast.Run(goldenInsts)
			ss := slow.Run(goldenInsts)
			if ss.SkippedCycles != 0 || ss.SkipEvents != 0 {
				t.Fatalf("ticking run recorded skips: %d cycles / %d events",
					ss.SkippedCycles, ss.SkipEvents)
			}
			if got, want := normalizeSkips(fs), normalizeSkips(ss); !reflect.DeepEqual(got, want) {
				t.Errorf("RunStats diverged between elision and ticking:\n got: %+v\nwant: %+v", got, want)
			}
			if fast.Meter != slow.Meter {
				t.Errorf("vp.Meter diverged between elision and ticking:\n got: %+v\nwant: %+v",
					fast.Meter, slow.Meter)
			}
		})
	}
}

// TestElisionObserverBoundary proves observation is jump-transparent:
// interval samples (including the mid-jump boundary case — the interval is
// chosen so boundaries land inside long DRAM stalls) and pipe-trace
// timestamps serialize byte-identically on both paths, once the
// skipped-cycle meter — documented as simulator-describing — is normalized.
func TestElisionObserverBoundary(t *testing.T) {
	const (
		interval   = 1_111 // prime-ish: boundaries drift across stall phases
		traceInsts = 2_000
	)
	runObserved := func(disable bool) ([]telemetry.Sample, []byte) {
		c := elideCore(t, "mcf", ooo.Skylake(), "FVP", disable)
		smp := telemetry.NewSampler()
		trc := telemetry.NewPipeTrace(traceInsts)
		c.SetObserver(smp, interval)
		c.SetTracer(trc)
		c.Run(goldenInsts)
		c.FinishObservation()
		var buf bytes.Buffer
		if err := trc.WriteChromeTrace(&buf); err != nil {
			t.Fatalf("WriteChromeTrace: %v", err)
		}
		return smp.Samples(), buf.Bytes()
	}
	fastSamples, fastTrace := runObserved(false)
	slowSamples, slowTrace := runObserved(true)

	marshal := func(samples []telemetry.Sample) []byte {
		for i := range samples {
			samples[i].SkippedCycles = 0
		}
		data, err := json.Marshal(samples)
		if err != nil {
			t.Fatalf("marshal samples: %v", err)
		}
		return data
	}
	if fast, slow := marshal(fastSamples), marshal(slowSamples); !bytes.Equal(fast, slow) {
		t.Errorf("interval samples diverged between elision and ticking:\n got: %s\nwant: %s", fast, slow)
	}
	if !bytes.Equal(fastTrace, slowTrace) {
		t.Errorf("pipe traces diverged between elision and ticking (%d vs %d bytes)",
			len(fastTrace), len(slowTrace))
	}
}

// TestElisionSkipsMemBound checks the fast path earns its keep where the
// ISSUE aimed it: a DRAM-bound pointer chaser must spend a large share of
// its cycles in jumps.
func TestElisionSkipsMemBound(t *testing.T) {
	if !ooo.ElisionEnabled() {
		t.Skip("built with -tags ooo_noskip")
	}
	c := elideCore(t, "mcf", ooo.Skylake(), "none", false)
	st := c.Run(goldenInsts)
	if st.SkipEvents == 0 || st.SkippedCycles == 0 {
		t.Fatalf("no idle cycles elided on mcf: %+v", st)
	}
	if st.SkippedCycles >= st.Cycles {
		t.Fatalf("skipped %d of %d cycles — skips must be a strict subset", st.SkippedCycles, st.Cycles)
	}
	if ratio := float64(st.SkippedCycles) / float64(st.Cycles); ratio < 0.2 {
		t.Errorf("skip ratio %.3f on a DRAM-bound chaser; want >= 0.2 (SkippedCycles=%d Cycles=%d)",
			ratio, st.SkippedCycles, st.Cycles)
	}
}
