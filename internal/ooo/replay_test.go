package ooo

import (
	"bytes"
	"testing"

	"fvp/internal/isa"
	"fvp/internal/prog"
	"fvp/internal/trace"
	"fvp/internal/workload"
)

// TestTraceReplayEquivalence checks a core invariant of the trace-driven
// design: simulating from a recorded binary trace must produce exactly the
// same timing as simulating from the live functional executor, because the
// timing model consumes only the DynInst stream.
func TestTraceReplayEquivalence(t *testing.T) {
	w, ok := workload.ByName("astar")
	if !ok {
		t.Fatal("workload missing")
	}
	p := w.Build()
	const n = 60_000

	// Record the trace.
	var buf bytes.Buffer
	tw, err := trace.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rec := prog.NewExec(p)
	var d isa.DynInst
	for i := 0; i < n+5000; i++ {
		if !rec.Next(&d) {
			t.Fatalf("executor halted at %d", i)
		}
		if err := tw.Append(&d); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}

	// Live run.
	live := New(Skylake(), nil, prog.NewExec(p), p.BuildMemory())
	live.WarmCaches(p.WarmRanges)
	liveStats := live.Run(n)

	// Replay run.
	tr, err := trace.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	replay := New(Skylake(), nil, tr, p.BuildMemory())
	replay.WarmCaches(p.WarmRanges)
	replayStats := replay.Run(n)

	if liveStats.Cycles != replayStats.Cycles {
		t.Errorf("cycles differ: live %d vs replay %d", liveStats.Cycles, replayStats.Cycles)
	}
	if liveStats.Retired != replayStats.Retired {
		t.Errorf("retired differ: %d vs %d", liveStats.Retired, replayStats.Retired)
	}
	if liveStats.BranchMispredicts != replayStats.BranchMispredicts {
		t.Errorf("mispredicts differ: %d vs %d",
			liveStats.BranchMispredicts, replayStats.BranchMispredicts)
	}
	if liveStats.LoadsByLevel != replayStats.LoadsByLevel {
		t.Errorf("load levels differ: %v vs %v",
			liveStats.LoadsByLevel, replayStats.LoadsByLevel)
	}
}

// TestDeterminism: two identical runs must agree cycle-for-cycle (the whole
// stack is deterministic by construction).
func TestDeterminism(t *testing.T) {
	w, _ := workload.ByName("cassandra")
	p := w.Build()
	run := func() RunStats {
		c := New(Skylake(), nil, prog.NewExec(p), p.BuildMemory())
		c.WarmCaches(p.WarmRanges)
		return c.Run(50_000)
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("non-deterministic runs:\n%+v\n%+v", a, b)
	}
}
