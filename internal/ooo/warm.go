package ooo

import (
	"fvp/internal/isa"
	"fvp/internal/memsys"
	"fvp/internal/vp"
)

// Functional warmup: train the machine's predictive state — caches,
// prefetchers, branch predictor, memory-dependence tables, value tables —
// directly from the architectural instruction stream, without a ROB, issue
// queue or scheduler. Cost is O(instructions) instead of O(cycles), which
// is what makes paper-scale warmup and region-parallel simulation cheap
// (see ISSUE 5 / DESIGN.md "Fast-forward warmup").
//
// Fidelity model: the structures that matter for a warmed measured region
// are trained *identically* to a detailed run where the detailed run is
// itself architectural — the branch unit (PredictAndTrain is in-order at
// fetch on the correct path), the retired-memory shadow, and the value
// tables' in-order train stream. Timing-born signals (cache access
// interleaving, NearHead criticality, store→load forwarding) are
// approximated with a constant-work dataflow clock per instruction; the
// warming-fidelity CI gate holds the resulting measured-region IPC within
// 1% of detailed warmup (geomean over the golden matrix).

// warmFwdEntries sizes the direct-mapped recent-store table the warmer
// uses to detect store→load forwarding functionally: a load whose address
// was stored within the last ROB's worth of instructions would have
// received its data through the LSQ in a detailed run.
const warmFwdEntries = 512

type warmFwdEnt struct {
	addr  uint64
	seq   uint64
	pc    uint64
	valid bool
}

// WarmFunctional consumes up to insts instructions from the core's source
// and feeds them to the warming taps. It leaves Stats and Meter untouched
// (the measured region starts from clean counters) but advances the
// machine's pseudo-clock so cache line fill times, DRAM bank state and the
// measured region's cycle numbering stay on one consistent timescale, as
// they would after a detailed warmup. It returns the number of
// instructions actually warmed (less than insts only when the source ran
// dry, which also marks the source done for the subsequent run).
func (c *Core) WarmFunctional(insts uint64) uint64 {
	if insts == 0 {
		return 0
	}
	warmer, fastWarm := c.pred.(vp.Warmer)
	// The baseline predictor consumes nothing: no Ctx, no TrainInfo, no
	// criticality tables (the detailed pipeline rebuilds oracle/branch-chain
	// state itself during measurement and only predictors read it). Skip
	// that bookkeeping wholesale — the dataflow clock, cache/branch/memdep
	// warming and the shadow memory are unaffected.
	_, minimal := c.pred.(vp.None)

	// Dataflow clock: regReady[r] is the pseudo-cycle register r's value
	// is available; frontier is how far in-order retirement has advanced;
	// nextFetch paces the front end at FetchWidth per cycle, bounded by
	// ROB occupancy (instruction i cannot fetch before instruction
	// i-ROBSize retired) — doneRing carries those retirement times.
	var regReady [isa.NumArchRegs]uint64
	var fwd [warmFwdEntries]warmFwdEnt
	doneRing := make([]uint64, c.cfg.ROBSize)
	ringIdx := 0 // wrapping cursor into doneRing (ROBSize isn't a power of 2)
	nextFetch := c.now
	frontier := c.now
	fetchCnt, retireCnt := 0, 0
	// Hot loop: keep the per-instruction constants and the fetch-line
	// cursor in locals (the interface calls below otherwise pin them to
	// memory every iteration).
	fetchWidth := c.cfg.FetchWidth
	feDepth := c.cfg.FrontEndDepth
	retireWidth := c.cfg.RetireWidth
	fwdLat := c.cfg.ForwardLat
	robSize := uint64(c.cfg.ROBSize)
	brPenalty := c.cfg.BranchMispredictPenalty
	lastLine := c.lastFetchLine

	var d isa.DynInst
	var n uint64
	for n = 0; n < insts; n++ {
		if !c.src.Next(&d) {
			c.srcDone = true
			break
		}

		// Front-end pacing + I-cache.
		if occ := doneRing[ringIdx]; occ > nextFetch {
			nextFetch = occ // ROB-full backpressure
		}
		if fetchCnt++; fetchCnt >= fetchWidth {
			nextFetch++
			fetchCnt = 0
		}
		if line := d.PC >> 6; line != lastLine {
			lastLine = line
			if done, _ := c.hier.WarmFetch(nextFetch, d.PC); done > nextFetch {
				nextFetch = done
			}
		}

		// Branch unit: identical training to detailed fetch.
		var histSnap uint64
		if !minimal {
			histSnap = c.bu.Hist.Bits(32)
		}
		mispred := false
		if d.Op.IsBranch() {
			mispred = c.bu.Warm(&d)
		}

		// Parent PCs through the architectural RAT-PC; source readiness
		// through the dataflow clock. critParent tracks the last-arriving
		// producer — the one the detailed oracle walk would follow.
		dispatchAt := nextFetch + feDepth
		start := dispatchAt
		var parents [2]uint64
		nparents := 0
		var critParent uint64
		if r := d.Src1; r != isa.RegZero {
			if t := regReady[r]; t > start {
				start = t
				critParent = c.regPC[r]
			}
			if pc := c.regPC[r]; pc != 0 {
				parents[0] = pc
				nparents = 1
			}
		}
		if r := d.Src2; r != isa.RegZero {
			if t := regReady[r]; t > start {
				start = t
				critParent = c.regPC[r]
			}
			if pc := c.regPC[r]; pc != 0 && (nparents == 0 || parents[0] != pc) {
				parents[nparents] = pc
				nparents++
			}
		}

		// Execute on the warming taps.
		info := vp.TrainInfo{}
		var done uint64
		switch {
		case d.Op.IsLoad():
			c.ss.WarmLoad(d.PC)
			slot := &fwd[(d.Addr>>3)%warmFwdEntries]
			if slot.valid && slot.addr == d.Addr && d.Seq-slot.seq <= robSize {
				// Would have forwarded from an in-flight store.
				done = start + fwdLat
				info.Forwarded = true
				c.pred.OnForward(d.PC, slot.pc)
			} else {
				var lvl memsys.Level
				done, lvl = c.hier.WarmLoad(start, d.Addr, d.PC)
				info.L1Miss = lvl > memsys.LvlL1
				info.LLCMiss = lvl == memsys.LvlMem
			}
		case d.Op.IsStore():
			c.ss.WarmStore(d.PC, d.Seq)
			done = start + 1
			fwd[(d.Addr>>3)%warmFwdEntries] = warmFwdEnt{
				addr: d.Addr, seq: d.Seq, pc: d.PC, valid: true,
			}
			c.shadow.Write(d.Addr, d.Value)
			c.hier.WarmStore(done, d.Addr)
		default:
			done = start + c.cfg.latencyFor(classOf(d.Op))
		}

		// Criticality signals from the dataflow clock: an instruction
		// completing past the retirement frontier is the head blocker a
		// detailed run would see stalling retirement (NearHead), and its
		// dependence roots seed the oracle table like a stall walk does.
		if !minimal {
			stalls := done > frontier
			info.NearHead = stalls
			info.OracleCritical = c.oracleHit(d.PC)
			info.MispredictedBranchChain = c.brChainHit(d.PC)
			if stalls {
				c.oracleInsert(d.PC)
				if critParent != 0 {
					c.oracleInsert(critParent)
				}
			}
			if mispred {
				for k := 0; k < nparents; k++ {
					c.brChainInsert(parents[k])
				}
			}
		}

		// Value tables: the full in-order call protocol — Lookup (stores
		// deposit MR identities), Train, OnRetire — unless the predictor
		// offers a cheaper Warmer path.
		switch {
		case minimal:
		case fastWarm:
			c.ctx.Hist = histSnap
			c.ctx.Parents = parents
			c.ctx.NumParents = nparents
			warmer.WarmObserve(&d, &c.ctx, info)
		default:
			c.ctx.Hist = histSnap
			c.ctx.Parents = parents
			c.ctx.NumParents = nparents
			p := c.pred.Lookup(&d, &c.ctx)
			if p.Valid {
				info.WasPredicted = true
				switch {
				case !p.StoreLinked:
					info.Correct = p.Value == d.Value
				case p.DataReady:
					info.Correct = p.Value == d.Value
				default:
					// Linked to an in-flight store: the LSQ would have
					// delivered that store's data, correct when the link
					// names the store this address last saw.
					slot := &fwd[(d.Addr>>3)%warmFwdEntries]
					info.Correct = slot.valid && slot.addr == d.Addr && slot.seq == p.StoreSeq
				}
			}
			c.pred.Train(&d, &c.ctx, info)
			c.pred.OnRetire(&d)
		}

		// Retire: architectural RAT-PC images, dataflow writeback, the
		// retirement frontier and the branch-redirect estimate.
		if d.HasDest() {
			c.regPC[d.Dst] = d.PC
			c.retRegPC[d.Dst] = d.PC
			regReady[d.Dst] = done
		}
		if retireCnt++; retireCnt >= retireWidth {
			frontier++
			retireCnt = 0
		}
		if done > frontier {
			frontier = done
		}
		doneRing[ringIdx] = frontier
		if ringIdx++; ringIdx == len(doneRing) {
			ringIdx = 0
		}
		if mispred {
			if resume := done + brPenalty; resume > nextFetch {
				nextFetch = resume
			}
		}
	}

	c.lastFetchLine = lastLine
	if frontier > c.now {
		c.now = frontier
	}
	return n
}
