// Package cluster turns a set of independent fvpd nodes into one
// logical service. Each node runs the full internal/simd stack; this
// package adds a thin HTTP routing layer in front of it that shards
// work by content address. A consistent-hash ring over the static peer
// list maps every run's spec key (the same sha256 address the service
// dedups and caches on) to exactly one owner node, and non-owners
// transparently forward submits over the existing /v1 wire API. Because
// ownership, dedup, and caching all key on the spec address, a spec
// submitted concurrently to any subset of nodes still executes exactly
// once — on its owner — and every node's clients see the same cached
// result afterwards.
//
// The layer is deliberately peer-to-peer and static: no coordinator,
// no membership protocol, no data migration. Losing a node loses only
// routing affinity — forwarding falls back to local execution behind a
// circuit breaker, trading dedup for availability until the peer
// returns.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is a consistent-hash ring over node IDs. Each node projects
// VNodes virtual points onto a 64-bit circle; a key is owned by the
// node whose next point clockwise from the key's hash. Virtual points
// smooth the load split (with 64 points per node the imbalance across
// a handful of nodes stays within a few percent) and keep remappings
// proportional to 1/n when the peer list changes between deployments.
type ring struct {
	points []ringPoint // sorted by hash, ascending
	nodes  []string    // member IDs, sorted
}

type ringPoint struct {
	hash uint64
	node string
}

// hash64 is fnv-1a; stdlib-only and stable across processes, which is
// what matters — every node must agree on the circle.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// newRing builds the circle for the given members. vnodes <= 0 selects
// the default of 64 points per node.
func newRing(members []string, vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	r := &ring{nodes: append([]string(nil), members...)}
	sort.Strings(r.nodes)
	r.points = make([]ringPoint, 0, len(r.nodes)*vnodes)
	for _, n := range r.nodes {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{
				hash: hash64(fmt.Sprintf("%s#%d", n, i)),
				node: n,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break by node name so every
		// node still computes an identical ring.
		return r.points[i].node < r.points[j].node
	})
	return r
}

// owner returns the node that owns key: the first ring point at or
// clockwise-after hash(key), wrapping at the top of the circle.
func (r *ring) owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// successors returns up to n distinct nodes clockwise after key's owner,
// excluding the owner itself — the replica set hot results are pushed
// to. Every node computes the same set, so a non-owner can predict
// whether it should hold a replica without asking anyone. Fewer than n
// nodes come back when the ring has fewer members.
func (r *ring) successors(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	seen := map[string]bool{r.points[i].node: true}
	var out []string
	for step := 1; step <= len(r.points) && len(out) < n; step++ {
		node := r.points[(i+step)%len(r.points)].node
		if !seen[node] {
			seen[node] = true
			out = append(out, node)
		}
	}
	return out
}
