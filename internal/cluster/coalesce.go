package cluster

import (
	"context"
	"fmt"
	"sync"
	"time"

	"fvp/internal/simd"
)

// fwdBatcher coalesces concurrent forwards headed to one peer: groups
// arriving within Config.BatchWindow (or until BatchMax requests pend)
// are merged into a single {"runs":[...]} POST, so a flood of
// single-spec submits through a non-owner costs the owner one HTTP
// round trip per window instead of one per request. Wait-mode and
// fire-and-forget traffic batch separately — their response timing
// differs by design — hence one batcher per (peer, wait) pair.
//
// Like the service's edge batcher, merging is transparent: a merged
// batch refused as a unit (one rider's quota, one malformed spec) is
// re-forwarded per group so each caller gets its own verdict.
type fwdBatcher struct {
	n    *Node
	p    *peer
	wait bool

	mu      sync.Mutex
	pending []*fwdGroup
	nreq    int
	timer   *time.Timer
}

// fwdGroup is one handleSubmit owner-group riding a merged forward.
type fwdGroup struct {
	reqs []simd.RunRequest
	ch   chan fwdResult
}

// fwdResult mirrors forwardSubmit's three-way outcome.
type fwdResult struct {
	statuses []simd.JobStatus
	errResp  *submitOutcome
	err      error
}

// forward routes one owner group to its peer, through the coalescer
// when one is configured. ctx only gates this caller's wait — the
// merged round trip itself runs on the background context, because the
// riders belong to different client connections and one hangup must not
// cancel the rest.
func (n *Node) forward(ctx context.Context, owner string, reqs []simd.RunRequest, wait bool) ([]simd.JobStatus, *submitOutcome, error) {
	p := n.peers[owner]
	if n.cfg.BatchWindow <= 0 {
		return n.forwardSubmit(ctx, p, reqs, wait)
	}
	b := n.fwdFor(owner, wait)
	g := &fwdGroup{reqs: reqs, ch: make(chan fwdResult, 1)}
	b.add(g)
	select {
	case r := <-g.ch:
		return r.statuses, r.errResp, r.err
	case <-ctx.Done():
		return nil, nil, ctx.Err()
	}
}

func (n *Node) fwdFor(owner string, wait bool) *fwdBatcher {
	key := owner
	if wait {
		key += "?wait"
	}
	n.fwdMu.Lock()
	b := n.fwd[key]
	if b == nil {
		b = &fwdBatcher{n: n, p: n.peers[owner], wait: wait}
		n.fwd[key] = b
	}
	n.fwdMu.Unlock()
	return b
}

func (b *fwdBatcher) add(g *fwdGroup) {
	b.mu.Lock()
	b.pending = append(b.pending, g)
	b.nreq += len(g.reqs)
	var groups []*fwdGroup
	if b.nreq >= b.n.cfg.BatchMax {
		groups = b.takeLocked()
	} else if len(b.pending) == 1 {
		b.timer = time.AfterFunc(b.n.cfg.BatchWindow, b.flushTimer)
	}
	b.mu.Unlock()
	b.flush(groups)
}

func (b *fwdBatcher) takeLocked() []*fwdGroup {
	groups := b.pending
	b.pending = nil
	b.nreq = 0
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	return groups
}

func (b *fwdBatcher) flushTimer() {
	b.mu.Lock()
	groups := b.takeLocked()
	b.mu.Unlock()
	b.flush(groups)
}

func (b *fwdBatcher) flush(groups []*fwdGroup) {
	if len(groups) == 0 {
		return
	}
	if len(groups) == 1 {
		g := groups[0]
		sts, errResp, err := b.n.forwardSubmit(context.Background(), b.p, g.reqs, b.wait)
		g.ch <- fwdResult{sts, errResp, err}
		return
	}
	total := 0
	for _, g := range groups {
		total += len(g.reqs)
	}
	merged := make([]simd.RunRequest, 0, total)
	for _, g := range groups {
		merged = append(merged, g.reqs...)
	}
	sts, errResp, err := b.n.forwardSubmit(context.Background(), b.p, merged, b.wait)
	if err == nil && errResp == nil && len(sts) != total {
		err = fmt.Errorf("cluster: peer %s answered %d statuses for %d merged runs", b.p.id, len(sts), total)
	}
	switch {
	case err != nil:
		// Transport failure: every rider falls back on its own (each
		// caller's handleSubmit runs the group locally).
		for _, g := range groups {
			g.ch <- fwdResult{err: err}
		}
	case errResp != nil:
		// The peer refused the merged batch as a unit. Re-forward each
		// group alone so one rider's rejection doesn't poison the rest.
		for _, g := range groups {
			sts, errResp, err := b.n.forwardSubmit(context.Background(), b.p, g.reqs, b.wait)
			g.ch <- fwdResult{sts, errResp, err}
		}
	default:
		off := 0
		for _, g := range groups {
			g.ch <- fwdResult{statuses: sts[off : off+len(g.reqs)]}
			off += len(g.reqs)
		}
	}
}
