package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"fvp/internal/simd"
	"fvp/internal/telemetry"
)

// Wire headers of the cluster layer.
const (
	// ForwardedHeader marks a request that already crossed one node
	// boundary. Forwarded requests are always served locally — the hop
	// limit is 1 — so a stale or disagreeing ring can never loop a
	// request around the cluster.
	ForwardedHeader = "X-Fvpd-Forwarded"
	// ForwardPeerHeader names the peer a failed by-ID forward was
	// destined for; it rides on the 502 so clients can tell "job's owner
	// is down" from "job does not exist".
	ForwardPeerHeader = "X-Fvpd-Forward-Peer"
)

// Config wires a Node in front of a running simd.Service.
type Config struct {
	// Service is the local batch-simulation service. Required.
	Service *simd.Service
	// Self is this node's ID; it must appear as a key in Peers when
	// Peers is non-empty, and should match the service's NodeID so job
	// IDs route back here.
	Self string
	// Peers maps node ID → base URL ("http://host:port") for every
	// cluster member including this one. Empty or self-only means
	// single-node mode: the Node adds GET /v1/cluster and otherwise
	// passes every request straight to the service, byte-identical to a
	// peerless deployment.
	Peers map[string]string
	// VNodes is the virtual points per node on the hash ring; default 64.
	VNodes int
	// ForwardTimeout bounds one non-wait forward attempt; default 10s.
	// Wait-mode submits are exempt (their response legitimately arrives
	// only when the simulation finishes) and are bounded by the
	// submitting client's own connection instead.
	ForwardTimeout time.Duration
	// Retries is how many times a transport-failed forward is retried
	// before falling back; default 2.
	Retries int
	// RetryBackoff is the delay between forward retries; default 50ms.
	RetryBackoff time.Duration
	// BreakerThreshold is the consecutive transport failures that open a
	// peer's circuit breaker; default 3.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker fails fast before
	// letting one probe through; default 5s.
	BreakerCooldown time.Duration
	// Replicas is how many ring successors a hot result is pushed to,
	// and the opt-in for serving replicated keys locally on non-owners.
	// 0 (the default) disables replication entirely.
	Replicas int
	// ReplicateAfter is the demand threshold: a self-owned key is pushed
	// to its successors once the owner has seen this many submits for it.
	// Default 3.
	ReplicateAfter int
	// BatchWindow enables forward coalescing: owner groups headed to the
	// same peer within one window merge into a single forwarded POST.
	// 0 (the default) forwards each group immediately.
	BatchWindow time.Duration
	// BatchMax caps the requests merged into one forwarded POST; a full
	// window flushes early. Default 256.
	BatchMax int
}

// ParsePeers parses the -peers flag: "id=url,id=url,...". Every node in
// a cluster must be started with the same list (plus its own -node-id)
// so all rings agree.
func ParsePeers(s string) (map[string]string, error) {
	if s == "" {
		return nil, nil
	}
	peers := make(map[string]string)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, url, ok := strings.Cut(part, "=")
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("cluster: bad peer %q, want id=url", part)
		}
		if _, dup := peers[id]; dup {
			return nil, fmt.Errorf("cluster: duplicate peer id %q", id)
		}
		peers[id] = strings.TrimSuffix(url, "/")
	}
	return peers, nil
}

func (c Config) withDefaults() Config {
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.ForwardTimeout <= 0 {
		c.ForwardTimeout = 10 * time.Second
	}
	if c.Retries < 0 {
		c.Retries = 0
	} else if c.Retries == 0 {
		c.Retries = 2
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 50 * time.Millisecond
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.ReplicateAfter <= 0 {
		c.ReplicateAfter = 3
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 256
	}
	return c
}

// Node is the cluster routing layer of one fvpd instance. It fronts
// the service's HTTP handler, owns the hash ring and per-peer
// forwarders, and registers the fvpd_forward* metric families on the
// service's exposition so /v1/metrics stays the single scrape target.
type Node struct {
	cfg   Config
	svc   *simd.Service
	inner http.Handler
	ring  *ring
	peers map[string]*peer // remote members only (never Self)
	hc    *http.Client

	// rep is the hot-result replication engine; nil outside cluster mode.
	rep *replicator
	// fwdHist is fvpd_forward_seconds{peer}: round-trip latency of every
	// breaker-gated forward (submits, by-ID lookups, replica pushes).
	fwdHist *telemetry.Vec

	// fwd holds the per-(peer, wait-mode) forward coalescers, created on
	// first use; empty unless Config.BatchWindow > 0.
	fwdMu sync.Mutex
	fwd   map[string]*fwdBatcher
}

// New builds the routing layer. With no peers the result is a
// pass-through plus GET /v1/cluster; with peers, Self must be one of
// them.
func New(cfg Config) (*Node, error) {
	if cfg.Service == nil {
		return nil, errors.New("cluster: Config.Service is required")
	}
	cfg = cfg.withDefaults()
	if len(cfg.Peers) > 0 {
		if cfg.Self == "" {
			return nil, errors.New("cluster: Self is required when Peers is set")
		}
		if _, ok := cfg.Peers[cfg.Self]; !ok {
			return nil, fmt.Errorf("cluster: Self %q is not in Peers", cfg.Self)
		}
	}
	n := &Node{
		cfg:   cfg,
		svc:   cfg.Service,
		inner: cfg.Service.Handler(),
		peers: make(map[string]*peer),
		hc: &http.Client{
			// No global timeout: wait-mode forwards block until the
			// simulation completes. Per-attempt deadlines come from the
			// request contexts instead.
			Transport: http.DefaultTransport,
		},
	}
	members := make([]string, 0, len(cfg.Peers))
	for id, url := range cfg.Peers {
		members = append(members, id)
		if id != cfg.Self {
			n.peers[id] = &peer{
				id:        id,
				url:       url,
				threshold: cfg.BreakerThreshold,
				cooldown:  cfg.BreakerCooldown,
			}
		}
	}
	n.ring = newRing(members, cfg.VNodes)
	n.fwdHist = telemetry.NewVec(telemetry.NewLatency)
	n.fwd = make(map[string]*fwdBatcher)
	if n.clustered() {
		n.rep = newReplicator(n, cfg.Replicas, cfg.ReplicateAfter)
		cfg.Service.AddMetricsAppender(n.writeMetrics)
	}
	return n, nil
}

// clustered reports whether there is anyone to forward to.
func (n *Node) clustered() bool { return len(n.peers) > 0 }

// Owner returns the node ID owning a spec key (exported for tests and
// tools; fvpsim uses it to explain routing).
func (n *Node) Owner(specKey string) string { return n.ring.owner(specKey) }

// Handler returns the cluster-aware HTTP API. In single-node mode only
// GET /v1/cluster is added; the rest of the surface is the service's
// own handler, untouched. In cluster mode, submits and by-ID lookups
// are routed by ownership and everything else stays local.
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/cluster", n.handleClusterStatus)
	if !n.clustered() {
		mux.Handle("/", n.inner)
		return mux
	}
	mux.HandleFunc("POST /v1/runs", n.handleSubmit)
	mux.HandleFunc("POST /runs", n.handleSubmit)
	mux.HandleFunc("PUT /v1/replicas/{key}", n.handleReplicaPut)
	byID := func(pattern string) { mux.HandleFunc(pattern, n.handleByID) }
	byID("GET /v1/runs/{id}")
	byID("GET /v1/runs/{id}/trace")
	byID("DELETE /v1/runs/{id}")
	byID("GET /runs/{id}")
	byID("DELETE /runs/{id}")
	mux.Handle("/", n.inner)
	return mux
}

// --- status ---

// Status is the body of GET /v1/cluster.
type Status struct {
	// Self is this node's ID ("" for a single-node deployment).
	Self string `json:"self"`
	// VNodes is the ring's virtual points per node.
	VNodes int `json:"vnodes"`
	// Peers lists every cluster member, self included, sorted by ID.
	Peers []PeerStatus `json:"peers"`
}

// PeerStatus is one member's row in Status.
type PeerStatus struct {
	ID  string `json:"id"`
	URL string `json:"url,omitempty"`
	// Self marks the reporting node's own row.
	Self bool `json:"self,omitempty"`
	// Health is the forwarding circuit-breaker state as seen from this
	// node: "ok", "open" (failing fast), or "half-open" (probing).
	Health string `json:"health"`
	// Inflight counts forwards to this peer currently outstanding.
	Inflight int `json:"inflight"`
	// Forwarded counts forwards that completed an HTTP round trip.
	Forwarded uint64 `json:"forwarded"`
	// ForwardErrors counts forward attempts lost to transport failures.
	ForwardErrors uint64 `json:"forward_errors"`
	// LastError is the most recent transport failure, if any.
	LastError string `json:"last_error,omitempty"`
}

// ClusterStatus snapshots the ring and per-peer forwarding state.
func (n *Node) ClusterStatus() Status {
	st := Status{Self: n.cfg.Self, VNodes: n.cfg.VNodes}
	st.Peers = append(st.Peers, PeerStatus{
		ID:     n.cfg.Self,
		URL:    n.cfg.Peers[n.cfg.Self],
		Self:   true,
		Health: "ok",
	})
	for _, p := range n.peers {
		st.Peers = append(st.Peers, p.snapshot())
	}
	sort.Slice(st.Peers, func(i, j int) bool { return st.Peers[i].ID < st.Peers[j].ID })
	return st
}

func (n *Node) handleClusterStatus(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(n.ClusterStatus())
}

// writeMetrics appends the forwarding families to the service's
// Prometheus exposition.
func (n *Node) writeMetrics(w io.Writer) {
	ids := make([]string, 0, len(n.peers))
	for id := range n.peers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	fmt.Fprintf(w, "# HELP fvpd_forwarded_total Requests forwarded to each peer that completed an HTTP round trip.\n# TYPE fvpd_forwarded_total counter\n")
	for _, id := range ids {
		fmt.Fprintf(w, "fvpd_forwarded_total{peer=%q} %d\n", id, n.peers[id].snapshot().Forwarded)
	}
	fmt.Fprintf(w, "# HELP fvpd_forward_errors_total Forward attempts lost to transport failures, per peer.\n# TYPE fvpd_forward_errors_total counter\n")
	for _, id := range ids {
		fmt.Fprintf(w, "fvpd_forward_errors_total{peer=%q} %d\n", id, n.peers[id].snapshot().ForwardErrors)
	}
	n.fwdHist.WriteProm(w, "fvpd_forward_seconds",
		"Round-trip latency of breaker-gated forwards to each peer (submit batches, by-ID lookups, replica pushes); headers-received, not body drain.")
	if n.rep != nil {
		fmt.Fprintf(w, "# HELP fvpd_replica_pushed_total Hot results successfully pushed to each ring successor.\n# TYPE fvpd_replica_pushed_total counter\n")
		for _, id := range ids {
			fmt.Fprintf(w, "fvpd_replica_pushed_total{peer=%q} %d\n", id, n.rep.pushed[id].Load())
		}
		fmt.Fprintf(w, "# HELP fvpd_replica_received_total Replicated results accepted from owners into the local cache.\n# TYPE fvpd_replica_received_total counter\nfvpd_replica_received_total %d\n", n.rep.received.Load())
		fmt.Fprintf(w, "# HELP fvpd_replica_hits_total Submits for non-owned keys served from a local replica, zero forward hops.\n# TYPE fvpd_replica_hits_total counter\nfvpd_replica_hits_total %d\n", n.rep.hits.Load())
	}
}

// --- submit routing ---

// submitOutcome is one owner group's result: either statuses merged
// into the batch response, or the first error response to propagate.
type submitOutcome struct {
	code   int
	header http.Header // Retry-After / X-Fvpd-Tenant etc., remote errors only
	body   []byte      // raw error body, remote errors only
	err    error       // local submit error (rendered by WriteSubmitError)
}

func (n *Node) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/runs" {
		// The legacy unversioned alias keeps its deprecation signal even
		// when the cluster layer answers instead of the service.
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", `</v1/runs>; rel="successor-version"`)
	}
	raw, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, err)
		return
	}
	if r.Header.Get(ForwardedHeader) != "" {
		// Hop limit: a forwarded submit executes here no matter what our
		// ring says, so two nodes with momentarily different peer lists
		// cannot bounce a request back and forth.
		if n.rep != nil {
			// Forwarded-in traffic is demand the owner must count: hot keys
			// are usually hot precisely because other nodes keep forwarding
			// them here.
			if reqs, _, err := simd.ParseRuns(raw); err == nil {
				for _, req := range reqs {
					if flat, err := req.Flattened(); err == nil {
						if key := simd.SpecKey(flat.RunSpec); n.ring.owner(key) == n.cfg.Self {
							n.rep.note(key)
						}
					}
				}
			}
		}
		r.Body = io.NopCloser(bytes.NewReader(raw))
		n.inner.ServeHTTP(w, r)
		return
	}
	reqs, legacy, err := simd.ParseRuns(raw)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, err)
		return
	}
	if legacy {
		simd.MarkSamplingDeprecated(w.Header())
	}
	wait := r.URL.Query().Get("wait") != ""

	// Group the batch by owner. Routing hashes the same spec key the
	// service dedups on, so concurrent submits of one spec — to any
	// node — meet at the owner and collapse to a single simulation.
	type group struct {
		idxs []int
		reqs []simd.RunRequest
	}
	groups := make(map[string]*group)
	for i, req := range reqs {
		flat, err := req.Flattened()
		if err != nil {
			writeJSONError(w, http.StatusBadRequest, err)
			return
		}
		key := simd.SpecKey(flat.RunSpec)
		owner := n.ring.owner(key)
		if owner == n.cfg.Self {
			n.rep.note(key)
		} else if n.rep.servesLocally(key) {
			// A replicated hot result lives in our own cache: serve it here,
			// zero hops, and keep serving it if the owner is gone.
			owner = n.cfg.Self
		}
		g := groups[owner]
		if g == nil {
			g = &group{}
			groups[owner] = g
		}
		g.idxs = append(g.idxs, i)
		g.reqs = append(g.reqs, req)
	}

	// Fan out: every owner group runs concurrently (local execution
	// included), so one slow peer doesn't serialize the batch. Groups
	// that fail at the transport after retries fall back to local
	// execution — availability over affinity. If any group errors, the
	// first error response wins verbatim; jobs admitted by other groups
	// stay admitted (a batch is not a transaction — callers that need
	// all-or-nothing submit one group per request).
	results := make([]simd.JobStatus, len(reqs))
	var (
		mu       sync.Mutex
		firstOut *submitOutcome
		wg       sync.WaitGroup
	)
	fail := func(out submitOutcome) {
		mu.Lock()
		if firstOut == nil {
			firstOut = &out
		}
		mu.Unlock()
	}
	runLocal := func(g *group) {
		statuses, err := n.svc.SubmitBatch(g.reqs)
		if err != nil {
			fail(submitOutcome{err: err})
			return
		}
		if wait {
			if statuses, err = n.svc.AwaitBatch(r.Context(), statuses); err != nil {
				return // client gone; jobs already canceled
			}
		}
		for i, st := range statuses {
			results[g.idxs[i]] = st
		}
	}
	for owner, g := range groups {
		wg.Add(1)
		go func(owner string, g *group) {
			defer wg.Done()
			if owner == n.cfg.Self {
				runLocal(g)
				return
			}
			statuses, errResp, transportErr := n.forward(r.Context(), owner, g.reqs, wait)
			switch {
			case transportErr != nil:
				if r.Context().Err() != nil {
					return // client gone; nothing to write or run
				}
				runLocal(g) // owner unreachable: run here, give up dedup
			case errResp != nil:
				fail(*errResp)
			default:
				for i, st := range statuses {
					results[g.idxs[i]] = st
				}
			}
		}(owner, g)
	}
	wg.Wait()

	if r.Context().Err() != nil {
		return
	}
	if firstOut != nil {
		if firstOut.err != nil {
			simd.WriteSubmitError(w, firstOut.err)
			return
		}
		for _, k := range []string{"Retry-After", "X-Fvpd-Tenant", "Content-Type"} {
			if v := firstOut.header.Get(k); v != "" {
				w.Header().Set(k, v)
			}
		}
		w.WriteHeader(firstOut.code)
		w.Write(firstOut.body)
		return
	}
	code := http.StatusAccepted
	if wait {
		code = http.StatusOK
	}
	writeJSON(w, code, simd.SubmitResponse{Jobs: results})
}

// forwardSubmit sends one owner group to its peer as a {"runs":[...]}
// batch. It returns the decoded statuses on 2xx, the raw error response
// on a non-2xx (the peer is alive; its answer — a 429 quota rejection,
// a 503 backpressure — belongs to the client), or a transport error
// after the breaker/retry budget is spent (the caller falls back to
// local execution).
func (n *Node) forwardSubmit(ctx context.Context, p *peer, reqs []simd.RunRequest, wait bool) ([]simd.JobStatus, *submitOutcome, error) {
	body, err := json.Marshal(struct {
		Runs []simd.RunRequest `json:"runs"`
	}{reqs})
	if err != nil {
		return nil, nil, err
	}
	path := "/v1/runs"
	if wait {
		path += "?wait=1"
	}
	var lastErr error
	for attempt := 0; attempt <= n.cfg.Retries; attempt++ {
		if attempt > 0 {
			if sleepBackoff(ctx, n.cfg.RetryBackoff) != nil {
				return nil, nil, ctx.Err()
			}
		}
		resp, err := n.roundTrip(ctx, p, http.MethodPost, path, body, !wait)
		if err != nil {
			if ctx.Err() != nil {
				return nil, nil, ctx.Err()
			}
			lastErr = err
			continue
		}
		raw, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode < 200 || resp.StatusCode > 299 {
			return nil, &submitOutcome{code: resp.StatusCode, header: resp.Header, body: raw}, nil
		}
		var sr simd.SubmitResponse
		if err := json.Unmarshal(raw, &sr); err != nil {
			return nil, nil, fmt.Errorf("cluster: peer %s returned malformed response: %w", p.id, err)
		}
		return sr.Jobs, nil, nil
	}
	return nil, nil, lastErr
}

// roundTrip performs one breaker-gated forward attempt. bounded adds
// the ForwardTimeout deadline (wait-mode submits are unbounded by
// design). The returned response's Body is open on success.
func (n *Node) roundTrip(parent context.Context, p *peer, method, path string, body []byte, bounded bool) (*http.Response, error) {
	if err := p.begin(time.Now()); err != nil {
		return nil, err
	}
	ctx, cancel := parent, context.CancelFunc(func() {})
	if bounded {
		ctx, cancel = context.WithTimeout(parent, n.cfg.ForwardTimeout)
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, p.url+path, rd)
	if err != nil {
		cancel()
		p.done(err, false, time.Now())
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	req.Header.Set(ForwardedHeader, n.cfg.Self)
	start := time.Now()
	resp, err := n.hc.Do(req)
	if err != nil {
		// A ForwardTimeout expiry is the peer's failure; the submitting
		// client's own cancellation (parent done) is nobody's fault.
		cancel()
		p.done(err, parent.Err() != nil, time.Now())
		return nil, err
	}
	// Hand the body to the caller; tie the deadline's release to it.
	// Latency is first-byte-of-headers, not body drain: wait-mode bodies
	// legitimately take as long as the simulation runs.
	n.fwdHist.With("peer=" + strconv.Quote(p.id)).Observe(time.Since(start).Seconds())
	resp.Body = &cancelOnClose{ReadCloser: resp.Body, cancel: cancel}
	p.done(nil, false, time.Now())
	p.responded()
	return resp, nil
}

type cancelOnClose struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (c *cancelOnClose) Close() error {
	err := c.ReadCloser.Close()
	c.cancel()
	return err
}

// --- by-ID routing ---

// handleByID routes GET/DELETE /v1/runs/{id}[/trace] by the node
// prefix baked into cluster job IDs ("<node>.j-<n>"). IDs minted here,
// bare pre-cluster IDs, and IDs of unknown nodes are served locally;
// anything else forwards verbatim to the owning node. There is no
// local fallback — the job lives on exactly one node — so an
// unreachable owner surfaces as 502 + X-Fvpd-Forward-Peer.
func (n *Node) handleByID(w http.ResponseWriter, r *http.Request) {
	node, _ := simd.SplitJobID(r.PathValue("id"))
	p := n.peers[node]
	if node == "" || node == n.cfg.Self || p == nil || r.Header.Get(ForwardedHeader) != "" {
		n.inner.ServeHTTP(w, r)
		return
	}
	var lastErr error
	for attempt := 0; attempt <= n.cfg.Retries; attempt++ {
		if attempt > 0 {
			if sleepBackoff(r.Context(), n.cfg.RetryBackoff) != nil {
				return
			}
		}
		resp, err := n.roundTrip(r.Context(), p, r.Method, r.URL.RequestURI(), nil, true)
		if err != nil {
			if r.Context().Err() != nil {
				return
			}
			lastErr = err
			continue
		}
		defer resp.Body.Close()
		for _, k := range []string{"Content-Type", "Retry-After", "Deprecation", "Link"} {
			if v := resp.Header.Get(k); v != "" {
				w.Header().Set(k, v)
			}
		}
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
		return
	}
	w.Header().Set(ForwardPeerHeader, node)
	writeJSONError(w, http.StatusBadGateway,
		fmt.Errorf("cluster: job owner %q unreachable: %v", node, lastErr))
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeJSONError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, struct {
		Error string `json:"error"`
	}{err.Error()})
}
