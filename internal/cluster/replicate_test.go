package cluster

import (
	"bytes"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"fvp/internal/simd"
)

// waitUntil polls cond until it holds or the deadline lapses.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// forwardedFrom sums the forward round trips a node has completed to
// all its peers — the hop count a replica hit must leave unchanged.
func (tc *testCluster) forwardedFrom(via string) uint64 {
	var n uint64
	for _, p := range tc.nodes[via].ClusterStatus().Peers {
		n += p.Forwarded
	}
	return n
}

// TestHotResultReplication: once a key's demand at its owner crosses
// ReplicateAfter, the result is pushed to the ring successors; from then
// on a non-owner serves submits for it from its own cache — zero forward
// hops, zero recomputes — and keeps doing so after the owner dies.
func TestHotResultReplication(t *testing.T) {
	tc := newTestCluster(t, 3, func(c *Config) {
		c.Replicas = 2
		c.ReplicateAfter = 2
	})
	owner, other := tc.ownerAndOther(t, 30000)
	key := simd.SpecKey(specFor(30000))

	// Two submits at the owner: the first computes and caches, the
	// second crosses the threshold and starts the push.
	for i := 0; i < 2; i++ {
		if resp, _ := postBody(t, tc.srvs[owner].URL+"/v1/runs?wait=1", specBody(30000, "")); resp.StatusCode != http.StatusOK {
			t.Fatalf("owner submit %d: HTTP %d", i, resp.StatusCode)
		}
	}
	// With 3 nodes and Replicas=2 every non-owner is a successor.
	for _, id := range tc.ids {
		if id == owner {
			continue
		}
		id := id
		waitUntil(t, "replica on "+id, func() bool { return tc.svcs[id].HasCachedResult(key) })
	}

	hopsBefore := tc.forwardedFrom(other)
	resp, out := postBody(t, tc.srvs[other].URL+"/v1/runs?wait=1", specBody(30000, ""))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replica-hit submit: HTTP %d", resp.StatusCode)
	}
	st := out.Jobs[0]
	if !st.Cached || st.State != simd.StateDone || st.Metrics == nil {
		t.Fatalf("replica hit not served from cache: %+v", st)
	}
	if st.Node != other {
		t.Fatalf("replica hit ran on %s, want locally on %s", st.Node, other)
	}
	if got := tc.forwardedFrom(other); got != hopsBefore {
		t.Fatalf("replica hit cost %d forward hops, want 0", got-hopsBefore)
	}
	if got := tc.totalRuns(); got != 1 {
		t.Fatalf("cluster ran %d simulations, want 1", got)
	}

	// Owner loss: the hot key survives on its replicas with no recompute.
	tc.srvs[owner].Close()
	resp2, out2 := postBody(t, tc.srvs[other].URL+"/v1/runs?wait=1", specBody(30000, ""))
	if resp2.StatusCode != http.StatusOK || !out2.Jobs[0].Cached {
		t.Fatalf("post-owner-kill submit: HTTP %d, cached=%v", resp2.StatusCode, out2.Jobs[0].Cached)
	}
	if got := tc.totalRuns(); got != 1 {
		t.Fatalf("owner death forced %d recomputes", got-1)
	}

	// The replication counters ride the owner-side and receiver-side
	// expositions.
	mresp, err := http.Get(tc.srvs[other].URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(mresp.Body)
	text := buf.String()
	for _, want := range []string{
		"fvpd_replica_received_total 1",
		"# TYPE fvpd_replica_hits_total counter",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if !strings.Contains(text, "fvpd_replica_hits_total 2") {
		t.Errorf("replica hits not counted: %s", text[strings.Index(text, "fvpd_replica_hits_total"):])
	}
}

// TestReplicaConsistencyUnderRace: replicated reads can never be stale,
// because a spec key content-addresses a deterministic simulation's
// immutable result. Concurrent replica installs and replica-path reads
// must always observe the one true value. Run under -race this also
// proves the push/serve paths share no unsynchronized state.
func TestReplicaConsistencyUnderRace(t *testing.T) {
	tc := newTestCluster(t, 2, func(c *Config) {
		c.Replicas = 1
		c.ReplicateAfter = 1
	})
	owner, other := tc.ownerAndOther(t, 40000)
	key := simd.SpecKey(specFor(40000))

	if resp, _ := postBody(t, tc.srvs[owner].URL+"/v1/runs?wait=1", specBody(40000, "")); resp.StatusCode != http.StatusOK {
		t.Fatalf("seed submit: HTTP %d", resp.StatusCode)
	}
	val, ok := tc.svcs[owner].CachedResultBytes(key)
	if !ok {
		t.Fatal("owner did not cache the seed result")
	}

	const readers, writers = 4, 2
	var wg sync.WaitGroup
	errs := make(chan error, readers*8+writers*8)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 8; j++ {
				req, err := http.NewRequest(http.MethodPut,
					tc.srvs[other].URL+"/v1/replicas/"+key, bytes.NewReader(val))
				if err != nil {
					errs <- err
					return
				}
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusNoContent {
					errs <- fmt.Errorf("replica PUT: HTTP %d", resp.StatusCode)
				}
			}
		}()
	}
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 8; j++ {
				resp, out := postBody(t, tc.srvs[other].URL+"/v1/runs?wait=1", specBody(40000, ""))
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("read submit: HTTP %d", resp.StatusCode)
					return
				}
				st := out.Jobs[0]
				if st.Metrics == nil || st.Metrics.IPC != 1 {
					errs <- fmt.Errorf("stale or wrong replica read: %+v", st)
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := tc.totalRuns(); got != 1 {
		t.Errorf("cluster ran %d simulations, want 1", got)
	}
}

// TestForwardCoalescing: concurrent submits through a non-owner that
// target the same peer merge into one forwarded POST — BatchMax riders,
// a single HTTP round trip, every caller getting its own status back.
func TestForwardCoalescing(t *testing.T) {
	const riders = 4
	tc := newTestCluster(t, 2, func(c *Config) {
		// Only the BatchMax trigger can flush: the window is never
		// waited out, so the merge is deterministic.
		c.BatchWindow = time.Minute
		c.BatchMax = riders
	})

	// Four distinct specs owned by the same (remote) node.
	owner, via := tc.ownerAndOther(t, 50000)
	insts := []int{50000}
	for next := 50001; len(insts) < riders; next++ {
		if tc.nodes[via].Owner(simd.SpecKey(specFor(next))) == owner {
			insts = append(insts, next)
		}
	}

	var wg sync.WaitGroup
	statuses := make([]simd.JobStatus, riders)
	codes := make([]int, riders)
	for i := 0; i < riders; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, out := postBody(t, tc.srvs[via].URL+"/v1/runs?wait=1", specBody(insts[i], ""))
			codes[i] = resp.StatusCode
			if resp.StatusCode == http.StatusOK {
				statuses[i] = out.Jobs[0]
			}
		}(i)
	}
	wg.Wait()

	for i := 0; i < riders; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("rider %d: HTTP %d", i, codes[i])
		}
		if statuses[i].State != simd.StateDone || statuses[i].Node != owner {
			t.Fatalf("rider %d: state %s on %s, want done on %s", i, statuses[i].State, statuses[i].Node, owner)
		}
	}
	if got := tc.runs[owner].Load(); got != riders {
		t.Fatalf("owner ran %d simulations, want %d", got, riders)
	}
	if got := tc.forwardedFrom(via); got != 1 {
		t.Fatalf("%d forwarded round trips for %d riders, want 1", got, riders)
	}
}
