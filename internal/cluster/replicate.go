package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
)

// hotTrackCap bounds the heat-tracking map. Keys arriving past the cap
// are simply not tracked (they can still be served, forwarded, and
// cached normally); a hot key that matters will re-enter once terminal
// entries are retired by push completion. The cap exists so an
// adversarial spec flood cannot grow the owner's heap.
const hotTrackCap = 4096

// replicator implements hot-result replication on a cluster node. The
// owner of a spec key counts the demand it sees for that key (its own
// submits plus forwarded-in traffic); when a key's hit count crosses
// ReplicateAfter and its result is cached, the result is pushed to the
// key's ring successors (Config.Replicas of them) via PUT
// /v1/replicas/{key}. Successors install the payload in their own
// result cache, after which they serve submits for that key locally —
// zero forward hops — and keep serving it if the owner dies, with zero
// recomputes.
//
// Replication never needs invalidation: a spec key is the content
// address of a deterministic simulation's input, so the value it maps
// to is immutable and a replica can never be stale.
type replicator struct {
	n         *Node
	replicas  int // successors pushed to; 0 disables pushing and local serving
	threshold int // hits before a key is pushed

	mu  sync.Mutex
	hot map[string]*hotEntry

	pushed   map[string]*atomic.Uint64 // per-peer successful pushes
	received atomic.Uint64             // replicas accepted from owners
	hits     atomic.Uint64             // submits served from a local replica
}

// hotEntry tracks one self-owned key's demand and push state.
type hotEntry struct {
	hits    int
	pushing bool // a push goroutine is in flight
	done    bool // replicas confirmed on every reachable successor
}

func newReplicator(n *Node, replicas, threshold int) *replicator {
	rp := &replicator{
		n: n, replicas: replicas, threshold: threshold,
		hot:    make(map[string]*hotEntry),
		pushed: make(map[string]*atomic.Uint64, len(n.peers)),
	}
	for id := range n.peers {
		rp.pushed[id] = &atomic.Uint64{}
	}
	return rp
}

// note counts one unit of demand for a self-owned key and starts the
// replica push when it crosses the threshold. A push that could not
// complete (result not yet computed, successor unreachable) re-arms on
// the next note, so heat keeps retrying until the replicas land.
func (rp *replicator) note(key string) {
	if rp == nil || rp.replicas <= 0 {
		return
	}
	rp.mu.Lock()
	e := rp.hot[key]
	if e == nil {
		if len(rp.hot) >= hotTrackCap {
			rp.mu.Unlock()
			return
		}
		e = &hotEntry{}
		rp.hot[key] = e
	}
	e.hits++
	start := !e.done && !e.pushing && e.hits >= rp.threshold
	if start {
		e.pushing = true
	}
	rp.mu.Unlock()
	if start {
		go rp.push(key)
	}
}

// push sends the key's cached result to every ring successor. All
// successors acknowledging marks the key done; any failure leaves it
// re-armed for the next note.
func (rp *replicator) push(key string) {
	val, ok := rp.n.svc.CachedResultBytes(key)
	if ok {
		for _, id := range rp.n.ring.successors(key, rp.replicas) {
			p := rp.n.peers[id]
			if p == nil {
				continue
			}
			if err := rp.n.pushReplica(p, key, val); err != nil {
				ok = false
				continue
			}
			rp.pushed[id].Add(1)
		}
	}
	rp.mu.Lock()
	if e := rp.hot[key]; e != nil {
		e.pushing = false
		e.done = ok
	}
	rp.mu.Unlock()
}

// servesLocally reports whether a key this node does NOT own should be
// served from the local cache anyway — the replica read path. Gated on
// replication being enabled so a replica-less deployment keeps the
// strict route-to-owner behavior (and its cluster-wide dedup) intact.
func (rp *replicator) servesLocally(key string) bool {
	if rp == nil || rp.replicas <= 0 {
		return false
	}
	if !rp.n.svc.HasCachedResult(key) {
		return false
	}
	rp.hits.Add(1)
	return true
}

// pushReplica PUTs one replicated result to a successor, through the
// same breaker-gated round trip as any other forward.
func (n *Node) pushReplica(p *peer, key string, val []byte) error {
	resp, err := n.roundTrip(context.Background(), p, http.MethodPut, "/v1/replicas/"+key, val, true)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("cluster: replica push to %s: HTTP %d", p.id, resp.StatusCode)
	}
	return nil
}

// handleReplicaPut is the receiving half: install a pushed result in
// the local cache. The service validates the payload decodes as metrics
// before caching, so a confused peer cannot poison the cache.
func (n *Node) handleReplicaPut(w http.ResponseWriter, r *http.Request) {
	raw, err := io.ReadAll(io.LimitReader(r.Body, 8<<20))
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, err)
		return
	}
	if err := n.svc.PutCachedResult(r.PathValue("key"), raw); err != nil {
		writeJSONError(w, http.StatusBadRequest, err)
		return
	}
	if n.rep != nil {
		n.rep.received.Add(1)
	}
	w.WriteHeader(http.StatusNoContent)
}
