package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fvp"
	"fvp/internal/simd"
)

func TestRingDeterministicAndCovering(t *testing.T) {
	members := []string{"a", "b", "c"}
	r1 := newRing(members, 64)
	r2 := newRing([]string{"c", "a", "b"}, 64) // order must not matter
	owned := map[string]int{}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("spec-%d", i)
		o := r1.owner(key)
		if o2 := r2.owner(key); o2 != o {
			t.Fatalf("rings disagree on %s: %s vs %s", key, o, o2)
		}
		owned[o]++
	}
	for _, m := range members {
		if owned[m] == 0 {
			t.Fatalf("node %s owns nothing: %v", m, owned)
		}
	}
}

// swapHandler lets us mint httptest URLs before the Nodes that serve
// them exist (the peer map needs every URL up front).
type swapHandler struct {
	mu sync.RWMutex
	h  http.Handler
}

func (s *swapHandler) set(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	h := s.h
	s.mu.RUnlock()
	if h == nil {
		http.Error(w, "not ready", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

// testCluster is N fvpd nodes wired into one ring, each with a stub
// RunFunc that counts executions per node.
type testCluster struct {
	ids   []string
	svcs  map[string]*simd.Service
	nodes map[string]*Node
	srvs  map[string]*httptest.Server
	runs  map[string]*atomic.Int64 // executions per node
	gate  chan struct{}            // non-nil: simulations block on it
}

func newTestCluster(t *testing.T, n int, mut func(*Config)) *testCluster {
	t.Helper()
	tc := &testCluster{
		svcs:  make(map[string]*simd.Service),
		nodes: make(map[string]*Node),
		srvs:  make(map[string]*httptest.Server),
		runs:  make(map[string]*atomic.Int64),
	}
	peers := make(map[string]string)
	proxies := make(map[string]*swapHandler)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("node%d", i)
		tc.ids = append(tc.ids, id)
		proxies[id] = &swapHandler{}
		srv := httptest.NewServer(proxies[id])
		tc.srvs[id] = srv
		peers[id] = srv.URL
		tc.runs[id] = &atomic.Int64{}
	}
	for _, id := range tc.ids {
		id := id
		svc := simd.New(simd.Config{
			Workers: 2, QueueSize: 16, NodeID: id,
			Run: func(ctx context.Context, spec fvp.RunSpec) (fvp.Metrics, error) {
				tc.runs[id].Add(1)
				if tc.gate != nil {
					select {
					case <-tc.gate:
					case <-ctx.Done():
						return fvp.Metrics{}, ctx.Err()
					}
				}
				return fvp.Metrics{IPC: 1, Cycles: 100, Insts: 100}, nil
			},
		})
		cfg := Config{
			Service: svc, Self: id, Peers: peers,
			RetryBackoff: time.Millisecond, ForwardTimeout: 2 * time.Second,
		}
		if mut != nil {
			mut(&cfg)
		}
		node, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		tc.svcs[id] = svc
		tc.nodes[id] = node
		proxies[id].set(node.Handler())
	}
	t.Cleanup(func() {
		for _, id := range tc.ids {
			tc.srvs[id].Close()
			tc.svcs[id].Close()
		}
	})
	return tc
}

func (tc *testCluster) totalRuns() int64 {
	var n int64
	for _, c := range tc.runs {
		n += c.Load()
	}
	return n
}

// specBody returns a distinct valid run spec; insts varies the content
// address.
func specBody(insts int, extra string) string {
	return fmt.Sprintf(`{"workload":"omnetpp","predictor":"fvp","warmup_insts":100,"measure_insts":%d%s}`,
		insts, extra)
}

func specFor(insts int) fvp.RunSpec {
	return fvp.RunSpec{Workload: "omnetpp", Predictor: "fvp", WarmupInsts: 100, MeasureInsts: uint64(insts)}
}

// ownerAndOther picks a spec's owner plus some non-owner node.
func (tc *testCluster) ownerAndOther(t *testing.T, insts int) (owner, other string) {
	t.Helper()
	owner = tc.nodes[tc.ids[0]].Owner(simd.SpecKey(specFor(insts)))
	for _, id := range tc.ids {
		if id != owner {
			return owner, id
		}
	}
	t.Fatal("no non-owner node")
	return
}

func postBody(t *testing.T, url, body string) (*http.Response, simd.SubmitResponse) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out simd.SubmitResponse
	if resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp, out
}

// TestSubmitRoutesToOwner: a submit through any non-owner lands on the
// spec's ring owner, and the returned job ID carries the owner's name.
func TestSubmitRoutesToOwner(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	owner, other := tc.ownerAndOther(t, 5000)

	resp, out := postBody(t, tc.srvs[other].URL+"/v1/runs?wait=1", specBody(5000, ""))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit via %s: HTTP %d", other, resp.StatusCode)
	}
	st := out.Jobs[0]
	if st.State != simd.StateDone || st.Metrics == nil {
		t.Fatalf("job ended %s: %+v", st.State, st)
	}
	if st.Node != owner {
		t.Fatalf("job ran on %s, want owner %s", st.Node, owner)
	}
	if !strings.HasPrefix(st.ID, owner+".j-") {
		t.Fatalf("job ID %q lacks owner prefix %s", st.ID, owner)
	}
	if got := tc.runs[owner].Load(); got != 1 {
		t.Fatalf("owner ran %d simulations, want 1", got)
	}
	if got := tc.totalRuns(); got != 1 {
		t.Fatalf("cluster ran %d simulations, want 1", got)
	}
}

// TestConcurrentSubmitRunsOnce is the dedup acceptance test: the same
// spec submitted concurrently to two different nodes executes exactly
// once cluster-wide.
func TestConcurrentSubmitRunsOnce(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	tc.gate = make(chan struct{})
	_, otherA := tc.ownerAndOther(t, 7000)
	// Find a second distinct non-owner if one exists; the owner itself
	// is also a fine second entry point.
	owner, _ := tc.ownerAndOther(t, 7000)

	var wg sync.WaitGroup
	codes := make([]int, 2)
	for i, via := range []string{otherA, owner} {
		wg.Add(1)
		go func(i int, via string) {
			defer wg.Done()
			resp, out := postBody(t, tc.srvs[via].URL+"/v1/runs?wait=1", specBody(7000, ""))
			codes[i] = resp.StatusCode
			if resp.StatusCode == http.StatusOK && out.Jobs[0].State != simd.StateDone {
				codes[i] = -1
			}
		}(i, via)
	}
	// Let both submits arrive and dedup before releasing the simulation.
	time.Sleep(100 * time.Millisecond)
	close(tc.gate)
	wg.Wait()

	for i, c := range codes {
		if c != http.StatusOK {
			t.Fatalf("submit %d: HTTP %d", i, c)
		}
	}
	if got := tc.totalRuns(); got != 1 {
		t.Fatalf("cluster ran %d simulations for one spec, want 1", got)
	}
}

// TestOwnerDownFallsBackLocally: with the owner dead, a submit through
// another node retries, trips the breaker, and executes locally.
func TestOwnerDownFallsBackLocally(t *testing.T) {
	tc := newTestCluster(t, 3, func(c *Config) {
		c.Retries = 2
		c.BreakerThreshold = 3
	})
	owner, other := tc.ownerAndOther(t, 9000)
	tc.srvs[owner].Close()

	resp, out := postBody(t, tc.srvs[other].URL+"/v1/runs?wait=1", specBody(9000, ""))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit with owner down: HTTP %d", resp.StatusCode)
	}
	st := out.Jobs[0]
	if st.State != simd.StateDone || st.Node != other {
		t.Fatalf("fallback job: state %s on node %s, want done on %s", st.State, st.Node, other)
	}
	if tc.runs[other].Load() != 1 {
		t.Fatalf("fallback did not run locally on %s", other)
	}

	// Three transport failures tripped the breaker; /v1/cluster shows it.
	cs := tc.nodes[other].ClusterStatus()
	for _, p := range cs.Peers {
		if p.ID == owner {
			if p.Health != "open" {
				t.Errorf("dead peer health %q, want open", p.Health)
			}
			if p.ForwardErrors == 0 {
				t.Error("no forward errors recorded against dead peer")
			}
		}
	}

	// A second submit fails fast (breaker open: no retries, no backoff).
	start := time.Now()
	resp2, _ := postBody(t, tc.srvs[other].URL+"/v1/runs?wait=1", specBody(9001, ""))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second submit with owner down: HTTP %d", resp2.StatusCode)
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("breaker open but submit took %s", d)
	}
}

// TestByIDRouting: a job fetched through a node that doesn't own it is
// forwarded to the owner by the ID's node prefix; with the owner dead
// the client gets 502 + X-Fvpd-Forward-Peer.
func TestByIDRouting(t *testing.T) {
	tc := newTestCluster(t, 3, func(c *Config) { c.Retries = 0 })
	owner, other := tc.ownerAndOther(t, 11000)

	_, out := postBody(t, tc.srvs[other].URL+"/v1/runs?wait=1", specBody(11000, ""))
	id := out.Jobs[0].ID

	// Every node can answer for the job, wherever it was asked.
	for _, via := range tc.ids {
		resp, err := http.Get(tc.srvs[via].URL + "/v1/runs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st simd.JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || st.ID != id || st.State != simd.StateDone {
			t.Fatalf("GET via %s: HTTP %d, %+v", via, resp.StatusCode, st)
		}
	}

	tc.srvs[owner].Close()
	resp, err := http.Get(tc.srvs[other].URL + "/v1/runs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("GET with owner down: HTTP %d, want 502", resp.StatusCode)
	}
	if got := resp.Header.Get(ForwardPeerHeader); got != owner {
		t.Fatalf("%s = %q, want %s", ForwardPeerHeader, got, owner)
	}
}

// TestForwardedSubmitStaysLocal: the hop limit — a request carrying the
// forwarded marker is served where it lands, never re-forwarded.
func TestForwardedSubmitStaysLocal(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	owner, other := tc.ownerAndOther(t, 13000)

	req, err := http.NewRequest(http.MethodPost, tc.srvs[other].URL+"/v1/runs?wait=1",
		strings.NewReader(specBody(13000, "")))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ForwardedHeader, "elsewhere")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded submit: HTTP %d", resp.StatusCode)
	}
	if tc.runs[other].Load() != 1 || tc.runs[owner].Load() != 0 {
		t.Fatalf("forwarded submit ran on owner %s (runs %d/%d), want local %s",
			owner, tc.runs[owner].Load(), tc.runs[other].Load(), other)
	}
}

// TestClusterStatusAndMetrics: GET /v1/cluster lists the full ring, and
// the forwarding counters ride the service's /v1/metrics exposition
// with HELP/TYPE metadata.
func TestClusterStatusAndMetrics(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	owner, other := tc.ownerAndOther(t, 15000)
	if resp, _ := postBody(t, tc.srvs[other].URL+"/v1/runs?wait=1", specBody(15000, "")); resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}

	resp, err := http.Get(tc.srvs[other].URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Self != other || len(st.Peers) != 3 {
		t.Fatalf("cluster status: self %q, %d peers", st.Self, len(st.Peers))
	}
	var fwd uint64
	for _, p := range st.Peers {
		if p.Self != (p.ID == other) {
			t.Errorf("peer %s self flag wrong", p.ID)
		}
		if p.ID == owner {
			fwd = p.Forwarded
		}
	}
	if fwd == 0 {
		t.Error("no forwards recorded against the owner")
	}

	mresp, err := http.Get(tc.srvs[other].URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, _ := io.ReadAll(mresp.Body)
	text := string(body)
	for _, want := range []string{
		"# TYPE fvpd_forwarded_total counter",
		"# TYPE fvpd_forward_errors_total counter",
		fmt.Sprintf("fvpd_forwarded_total{peer=%q} 1", owner),
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestSingleNodePassThrough: with no peers the handler is the plain
// service surface plus GET /v1/cluster; no forwarding metrics appear.
func TestSingleNodePassThrough(t *testing.T) {
	svc := simd.New(simd.Config{Workers: 1, Run: func(ctx context.Context, spec fvp.RunSpec) (fvp.Metrics, error) {
		return fvp.Metrics{IPC: 1}, nil
	}})
	defer svc.Close()
	node, err := New(Config{Service: svc})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(node.Handler())
	defer srv.Close()

	resp, out := postBody(t, srv.URL+"/v1/runs?wait=1", specBody(1000, ""))
	if resp.StatusCode != http.StatusOK || out.Jobs[0].State != simd.StateDone {
		t.Fatalf("pass-through submit: HTTP %d %+v", resp.StatusCode, out)
	}
	if strings.Contains(out.Jobs[0].ID, ".j-") {
		t.Fatalf("single-node job ID %q carries a node prefix", out.Jobs[0].ID)
	}

	cresp, err := http.Get(srv.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer cresp.Body.Close()
	var st Status
	if err := json.NewDecoder(cresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Self != "" || len(st.Peers) != 1 {
		t.Fatalf("single-node status: %+v", st)
	}

	mresp, err := http.Get(srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, _ := io.ReadAll(mresp.Body)
	if strings.Contains(string(body), "fvpd_forwarded_total") {
		t.Error("single-node exposition carries forwarding families")
	}
}

// TestQuotaRejectionPropagates: a tenant 429 raised by the owner node
// crosses back through the forwarding node verbatim — status, body,
// Retry-After, and X-Fvpd-Tenant intact.
func TestQuotaRejectionPropagates(t *testing.T) {
	// Rebuild a 2-node cluster where every service has a tight quota for
	// tenant "flood".
	tc := &testCluster{
		svcs:  make(map[string]*simd.Service),
		nodes: make(map[string]*Node),
		srvs:  make(map[string]*httptest.Server),
		runs:  make(map[string]*atomic.Int64),
	}
	peers := make(map[string]string)
	proxies := make(map[string]*swapHandler)
	for i := 0; i < 2; i++ {
		id := fmt.Sprintf("node%d", i)
		tc.ids = append(tc.ids, id)
		proxies[id] = &swapHandler{}
		srv := httptest.NewServer(proxies[id])
		tc.srvs[id] = srv
		peers[id] = srv.URL
		tc.runs[id] = &atomic.Int64{}
	}
	gate := make(chan struct{})
	defer close(gate)
	for _, id := range tc.ids {
		svc := simd.New(simd.Config{
			Workers: 1, QueueSize: 16, NodeID: id,
			Tenants: simd.TenantConfig{Quotas: map[string]simd.TenantQuota{
				"flood": {Rate: 0.001, Burst: 1},
			}},
			Run: func(ctx context.Context, spec fvp.RunSpec) (fvp.Metrics, error) {
				select {
				case <-gate:
				case <-ctx.Done():
				}
				return fvp.Metrics{IPC: 1}, nil
			},
		})
		node, err := New(Config{Service: svc, Self: id, Peers: peers, RetryBackoff: time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		tc.svcs[id] = svc
		tc.nodes[id] = node
		proxies[id].set(node.Handler())
	}
	t.Cleanup(func() {
		for _, id := range tc.ids {
			tc.srvs[id].Close()
			tc.svcs[id].Close()
		}
	})

	// Find two specs owned by the same node, submitted via the other.
	ownerOf := func(insts int) string {
		return tc.nodes[tc.ids[0]].Owner(simd.SpecKey(specFor(insts)))
	}
	first := 20000
	owner := ownerOf(first)
	second := first + 1
	for ownerOf(second) != owner {
		second++
	}
	via := tc.ids[0]
	if via == owner {
		via = tc.ids[1]
	}

	tbody := func(insts int) string { return specBody(insts, `,"tenant":"flood"`) }
	if resp, _ := postBody(t, tc.srvs[via].URL+"/v1/runs", tbody(first)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first flood submit: HTTP %d", resp.StatusCode)
	}
	resp, _ := postBody(t, tc.srvs[via].URL+"/v1/runs", tbody(second))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second flood submit: HTTP %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("forwarded 429 lost Retry-After")
	}
	if got := resp.Header.Get("X-Fvpd-Tenant"); got != "flood" {
		t.Errorf("forwarded 429 X-Fvpd-Tenant = %q", got)
	}
}
