package cluster

import (
	"context"
	"errors"
	"sync"
	"time"
)

// errBreakerOpen short-circuits a forward attempt without touching the
// network: the peer's circuit breaker is open and the cooldown has not
// elapsed. Callers treat it like any other transport failure (fall back
// to local execution for submits, 502 for by-ID routing).
var errBreakerOpen = errors.New("cluster: peer circuit breaker open")

// breaker states. closed = forwarding normally; open = peer presumed
// down, fail fast; halfOpen = cooldown elapsed, one probe in flight.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "ok"
	}
}

// peer is one remote cluster member: its address, a circuit breaker,
// and forwarding counters. Only transport-level failures (dial refused,
// connection reset, timeout) count against the breaker — any HTTP
// response, including a 429 or 503, proves the peer is alive and is
// propagated to the client rather than absorbed. Context cancellations
// caused by the submitting client hanging up are not failures either;
// they say nothing about the peer.
type peer struct {
	id  string
	url string

	threshold int           // consecutive transport failures before opening
	cooldown  time.Duration // open → half-open delay

	mu       sync.Mutex
	state    breakerState
	fails    int       // consecutive transport failures while closed
	openedAt time.Time // when the breaker last opened

	inflight  int    // forwards currently outstanding
	forwarded uint64 // forwards that got an HTTP response back
	failures  uint64 // forward attempts that failed at the transport
	lastErr   string // most recent transport error, for /v1/cluster
}

// begin gates a forward attempt: it returns errBreakerOpen while the
// breaker is open and inside its cooldown, and otherwise registers the
// attempt (moving an expired open breaker to half-open so exactly this
// attempt serves as the probe).
func (p *peer) begin(now time.Time) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.state == breakerOpen {
		if now.Sub(p.openedAt) < p.cooldown {
			return errBreakerOpen
		}
		p.state = breakerHalfOpen
	}
	p.inflight++
	return nil
}

// done records the attempt's outcome. transportErr is non-nil only for
// transport-level failures; canceled marks failures caused by the
// caller's own context, which are neutral (the attempt is unwound
// without moving the breaker either way).
func (p *peer) done(transportErr error, canceled bool, now time.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.inflight--
	if canceled {
		if p.state == breakerHalfOpen {
			p.state = breakerOpen // the probe resolved nothing; stay open
		}
		return
	}
	if transportErr == nil {
		p.state = breakerClosed
		p.fails = 0
		return
	}
	p.failures++
	p.lastErr = transportErr.Error()
	if p.state == breakerHalfOpen {
		p.state = breakerOpen
		p.openedAt = now
		return
	}
	p.fails++
	if p.fails >= p.threshold {
		p.state = breakerOpen
		p.openedAt = now
		p.fails = 0
	}
}

// responded counts a completed HTTP round trip (any status code).
func (p *peer) responded() {
	p.mu.Lock()
	p.forwarded++
	p.mu.Unlock()
}

// snapshot returns the peer's row for /v1/cluster and /v1/metrics.
func (p *peer) snapshot() PeerStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PeerStatus{
		ID:            p.id,
		URL:           p.url,
		Health:        p.state.String(),
		Inflight:      p.inflight,
		Forwarded:     p.forwarded,
		ForwardErrors: p.failures,
		LastError:     p.lastErr,
	}
}

// sleepBackoff waits one retry backoff or until ctx fires.
func sleepBackoff(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
