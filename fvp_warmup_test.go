package fvp

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func TestValidateWarmupMode(t *testing.T) {
	base := RunSpec{Workload: "mcf", WarmupInsts: 1_000, MeasureInsts: 5_000}

	for _, mode := range append([]string{""}, WarmupModes()...) {
		s := base
		s.WarmupMode = mode
		if err := Validate(s); err != nil {
			t.Errorf("mode %q must validate: %v", mode, err)
		}
	}

	s := base
	s.WarmupMode = "fnctional"
	err := Validate(s)
	var une *UnknownNameError
	if !errors.As(err, &une) {
		t.Fatalf("typo mode: err = %v, want *UnknownNameError", err)
	}
	if une.Suggestion != "functional" {
		t.Errorf("did-you-mean = %q, want %q", une.Suggestion, "functional")
	}
	if !strings.Contains(err.Error(), "functional") {
		t.Errorf("error text lacks the suggestion: %q", err.Error())
	}
}

func TestValidateRegions(t *testing.T) {
	base := RunSpec{Workload: "mcf", WarmupInsts: 1_000, MeasureInsts: 5_000}

	cases := []struct {
		name    string
		mutate  func(*RunSpec)
		wantErr bool
		field   string
	}{
		{"default", func(s *RunSpec) {}, false, ""},
		{"at cap", func(s *RunSpec) { s.Regions = MaxRegions }, false, ""},
		{"negative", func(s *RunSpec) { s.Regions = -1 }, true, "regions"},
		{"over cap", func(s *RunSpec) { s.Regions = MaxRegions + 1 }, true, "regions"},
		{"more regions than insts", func(s *RunSpec) {
			s.MeasureInsts = 4
			s.Regions = 8
		}, true, "regions"},
		{"observer with regions", func(s *RunSpec) {
			s.Regions = 2
			s.Observer = observerFunc(func(IntervalMetrics) {})
		}, true, "regions"},
	}
	for _, c := range cases {
		s := base
		c.mutate(&s)
		err := Validate(s)
		if !c.wantErr {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		var ise *InvalidSpecError
		if !errors.As(err, &ise) {
			t.Errorf("%s: err = %v, want *InvalidSpecError", c.name, err)
			continue
		}
		if ise.Field != c.field {
			t.Errorf("%s: field = %q, want %q", c.name, ise.Field, c.field)
		}
	}
}

// Functional warmup and region-parallel runs must surface through the
// façade metrics: the mode label, the fast-forwarded instruction count and
// its throughput, with the measured region's length unchanged.
func TestRunFunctionalWarmupMetrics(t *testing.T) {
	det, err := Run(RunSpec{
		Workload: "hmmer", Predictor: PredFVP,
		WarmupInsts: 5_000, MeasureInsts: 20_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if det.WarmupMode != "detailed" || det.FFInsts != 0 || det.FFInstsPerSec != 0 {
		t.Errorf("detailed run metrics: mode=%q ff=%d rate=%v",
			det.WarmupMode, det.FFInsts, det.FFInstsPerSec)
	}

	fun, err := Run(RunSpec{
		Workload: "hmmer", Predictor: PredFVP,
		WarmupInsts: 5_000, MeasureInsts: 20_000, WarmupMode: "functional",
	})
	if err != nil {
		t.Fatal(err)
	}
	if fun.WarmupMode != "functional" {
		t.Errorf("WarmupMode = %q, want functional", fun.WarmupMode)
	}
	// The warmup window splits into a functionally fast-forwarded bulk
	// and a short detailed tail; FFInsts counts the former only.
	if fun.FFInsts == 0 || fun.FFInsts >= 5_000 {
		t.Errorf("FFInsts = %d, want in (0, 5000)", fun.FFInsts)
	}
	if fun.FFInstsPerSec <= 0 {
		t.Errorf("FFInstsPerSec = %v, want > 0", fun.FFInstsPerSec)
	}
	if fun.Insts < 20_000 {
		t.Errorf("measured %d instructions, want >= 20000", fun.Insts)
	}

	// The JSON wire names are part of the service schema.
	raw, err := json.Marshal(fun)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"warmup_mode":"functional"`, `"ff_insts":`, `"ff_insts_per_sec":`} {
		if !strings.Contains(string(raw), key) {
			t.Errorf("metrics JSON lacks %s: %s", key, raw)
		}
	}
}

func TestRunRegionsThroughFacade(t *testing.T) {
	m, err := Run(RunSpec{
		Workload: "omnetpp", Predictor: PredFVP,
		WarmupInsts: 5_000, MeasureInsts: 40_000,
		WarmupMode: "functional", Regions: 4, RegionWorkers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.IPC <= 0 {
		t.Fatalf("IPC = %v", m.IPC)
	}
	if m.Insts < 40_000 {
		t.Errorf("measured %d instructions, want >= 40000", m.Insts)
	}
	// FFInsts covers the checkpoint scan plus each region's warmup.
	if m.FFInsts < 40_000 {
		t.Errorf("FFInsts = %d, want >= 40000 (scan + per-region warmups)", m.FFInsts)
	}
}
