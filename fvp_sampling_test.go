package fvp

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func TestValidateSampling(t *testing.T) {
	base := RunSpec{Workload: "mcf", WarmupInsts: 1_000, MeasureInsts: 100_000}

	cases := []struct {
		name    string
		mutate  func(*RunSpec)
		wantErr bool
		field   string
	}{
		{"disabled", func(s *RunSpec) {}, false, ""},
		{"units", func(s *RunSpec) { s.SampleUnits = 8 }, false, ""},
		{"target only", func(s *RunSpec) { s.SampleTargetCI = 0.02 }, false, ""},
		{"at cap", func(s *RunSpec) {
			s.MeasureInsts = MaxMeasureInsts
			s.SampleUnits = MaxSampleUnits
		}, false, ""},
		{"one unit", func(s *RunSpec) { s.SampleUnits = 1 }, true, "sample_units"},
		{"negative units", func(s *RunSpec) { s.SampleUnits = -4 }, true, "sample_units"},
		{"over cap", func(s *RunSpec) { s.SampleUnits = MaxSampleUnits + 1 }, true, "sample_units"},
		{"bad target", func(s *RunSpec) { s.SampleTargetCI = 1.0 }, true, "sample_target_ci"},
		{"negative max", func(s *RunSpec) {
			s.SampleUnits = 4
			s.SampleMaxUnits = -1
		}, true, "sample_max_units"},
		{"budget over region", func(s *RunSpec) {
			s.SampleUnits = 4
			s.SampleUnitInsts = 50_000
		}, true, "sample_units"},
		{"with regions", func(s *RunSpec) {
			s.SampleUnits = 4
			s.Regions = 2
		}, true, "sample_units"},
		{"with observer", func(s *RunSpec) {
			s.SampleUnits = 4
			s.Observer = observerFunc(func(IntervalMetrics) {})
		}, true, "sample_units"},
	}
	for _, c := range cases {
		s := base
		c.mutate(&s)
		err := Validate(s)
		if !c.wantErr {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		var ise *InvalidSpecError
		if !errors.As(err, &ise) {
			t.Errorf("%s: err = %v, want *InvalidSpecError", c.name, err)
			continue
		}
		if ise.Field != c.field {
			t.Errorf("%s: field = %q, want %q", c.name, ise.Field, c.field)
		}
	}
}

// A spec that relies on sampling defaults and one that spells them out must
// normalize identically — that equality is what the fvpd result cache keys
// on.
func TestNormalizedSamplingDefaults(t *testing.T) {
	implicit := RunSpec{Workload: "mcf", SampleTargetCI: 0.02}.Normalized()
	explicit := RunSpec{
		Workload: "mcf", SampleTargetCI: 0.02,
		SampleUnits: implicit.SampleUnits, SampleUnitInsts: implicit.SampleUnitInsts,
		SampleWarmupInsts: implicit.SampleWarmupInsts, SampleMaxUnits: implicit.SampleMaxUnits,
	}.Normalized()
	if implicit != explicit {
		t.Errorf("normalization not idempotent:\n got: %+v\nwant: %+v", implicit, explicit)
	}
	if implicit.SampleUnits < 2 || implicit.SampleUnitInsts == 0 ||
		implicit.SampleWarmupInsts == 0 || implicit.SampleMaxUnits == 0 {
		t.Errorf("sampling defaults not made explicit: %+v", implicit)
	}
	// A non-sampled spec must not grow sampling fields.
	plain := RunSpec{Workload: "mcf"}.Normalized()
	if plain.SampleUnits != 0 || plain.SampleUnitInsts != 0 {
		t.Errorf("non-sampled spec normalized sampling fields: %+v", plain)
	}
}

// Sampled runs must surface through the façade: the report block with its
// confidence interval, the stitched point metrics, and the wire names.
func TestRunSampledThroughFacade(t *testing.T) {
	m, err := Run(RunSpec{
		Workload: "omnetpp", Predictor: PredFVP,
		WarmupInsts: 5_000, MeasureInsts: 200_000,
		SampleUnits: 8, SampleUnitInsts: 1_000, SampleWarmupInsts: 2_000, SampleSeed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Sampling == nil {
		t.Fatal("sampled run returned no Sampling block")
	}
	if m.Sampling.Units != 8 || m.Sampling.UnitInsts != 1_000 || m.Sampling.Rounds != 1 {
		t.Errorf("sampling block: %+v", m.Sampling)
	}
	if m.Sampling.SampledInsts != m.Insts {
		t.Errorf("SampledInsts = %d, Insts = %d (stitched metrics must cover the units)",
			m.Sampling.SampledInsts, m.Insts)
	}
	if m.Sampling.IPC.Mean <= 0 || m.Sampling.IPC.CIHalf < 0 {
		t.Errorf("IPC estimate: %+v", m.Sampling.IPC)
	}
	if m.IPC <= 0 {
		t.Errorf("stitched IPC = %v", m.IPC)
	}

	raw, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"sampling":`, `"units":8`, `"sampled_insts":`, `"rel_ci":`, `"ci_half":`} {
		if !strings.Contains(string(raw), key) {
			t.Errorf("metrics JSON lacks %s: %s", key, raw)
		}
	}

	// Full-detail runs must not carry the block.
	full, err := Run(RunSpec{Workload: "mcf", WarmupInsts: 1_000, MeasureInsts: 5_000})
	if err != nil {
		t.Fatal(err)
	}
	if full.Sampling != nil {
		t.Errorf("full-detail run grew a Sampling block: %+v", full.Sampling)
	}
}

// ToRecord must flatten the sampling statistics into the report row.
func TestToRecordSamplingFields(t *testing.T) {
	spec := RunSpec{Workload: "omnetpp", Predictor: PredFVP,
		WarmupInsts: 5_000, MeasureInsts: 100_000, SampleUnits: 4, SampleUnitInsts: 500}
	m, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	rec := ToRecord(spec, nil, m)
	if rec.SampleUnits != 4 {
		t.Errorf("SampleUnits = %d, want 4", rec.SampleUnits)
	}
	if rec.SampledInsts != m.Sampling.SampledInsts {
		t.Errorf("SampledInsts = %d, want %d", rec.SampledInsts, m.Sampling.SampledInsts)
	}
	if rec.IPCRelCI != m.Sampling.IPC.RelCI {
		t.Errorf("IPCRelCI = %v, want %v", rec.IPCRelCI, m.Sampling.IPC.RelCI)
	}
}

// The suite sweep must propagate sampling to every run of both arms.
func TestCompareSuiteSampled(t *testing.T) {
	cs, err := CompareSuiteContext(t.Context(), SuiteSpec{
		Predictor:   PredFVP,
		WarmupInsts: 2_000, MeasureInsts: 100_000,
		Workloads:   []string{"mcf", "hmmer"},
		SampleUnits: 4, SampleUnitInsts: 500, SampleSeed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 2 {
		t.Fatalf("got %d comparisons, want 2", len(cs))
	}
	for _, c := range cs {
		if c.Base.Sampling == nil || c.Pred.Sampling == nil {
			t.Fatalf("%s: sampling block missing (base %v, pred %v)",
				c.Workload, c.Base.Sampling != nil, c.Pred.Sampling != nil)
		}
		if c.Base.Sampling.Units != 4 || c.Pred.Sampling.Units != 4 {
			t.Errorf("%s: units base=%d pred=%d, want 4",
				c.Workload, c.Base.Sampling.Units, c.Pred.Sampling.Units)
		}
	}
	// Invalid sampling shapes must be rejected up front.
	_, err = CompareSuiteContext(t.Context(), SuiteSpec{
		Workloads: []string{"mcf"}, SampleUnits: 1,
	})
	var ise *InvalidSpecError
	if !errors.As(err, &ise) {
		t.Errorf("suite with 1 unit: err = %v, want *InvalidSpecError", err)
	}
}
